(* Time-travel observability: as_of reconstruction, per-object history
   attribution, archive bridging below the truncation horizon, and
   reenactment — checked on random workloads for every engine and both
   backends, plus committed deterministic reenactment cases. *)

open Ariesrh_types
open Ariesrh_core
open Ariesrh_workload
module Temporal = Ariesrh_temporal.Temporal
module Backend = Ariesrh_storage.Backend
module Log_store = Ariesrh_wal.Log_store

let n_objects = 32

let spec steps =
  { Gen.default with n_objects; n_steps = steps; p_delegate = 0.3 }

type params = {
  seed : int64;
  steps : int;
  crash_frac : float;
  which : int;  (* engine: 0 rh, 1 eager, 2 lazy *)
  file : bool;  (* file backend instead of sim *)
}

let impl_of = function
  | 0 -> Config.Rh
  | 1 -> Config.Eager
  | _ -> Config.Lazy

let impl_name = function 0 -> "rh" | 1 -> "eager" | _ -> "lazy"

let print_params p =
  Printf.sprintf "{seed=%Ld; steps=%d; crash_frac=%.2f; engine=%s; file=%b}"
    p.seed p.steps p.crash_frac (impl_name p.which) p.file

let gen_params =
  QCheck.Gen.(
    map
      (fun (seed, steps, crash_frac, which, file) ->
        { seed = Int64.of_int seed; steps; crash_frac; which; file })
      (tup5 (int_bound 1_000_000) (int_range 20 120)
         (float_bound_inclusive 1.0) (int_range 0 2)
         (map (fun n -> n = 0) (int_bound 3))))

let arb = QCheck.make ~print:print_params gen_params

let script_of p = Gen.generate (spec p.steps) ~seed:p.seed

let crash_point p script =
  let n = List.length script in
  min n (int_of_float (p.crash_frac *. float_of_int n))

(* private scratch dirs for the file backend, removed on success *)
let scratch = ref 0

let fresh_dir tag =
  incr scratch;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ariesrh-temporal-%d-%s-%d" (Unix.getpid ()) tag
         !scratch)
  in
  Backend.remove_tree d;
  d

let with_db p ~tag ?tracing f =
  let dir = if p.file then Some (fresh_dir tag) else None in
  let backend =
    match dir with None -> Backend.Sim | Some dir -> Backend.File { dir }
  in
  let db =
    Driver.fresh_db ~backend ~impl:(impl_of p.which) ?tracing ~n_objects ()
  in
  let r = f db in
  Db.close db;
  Option.iter Backend.remove_tree dir;
  r

let pp_arr a = String.concat ";" (Array.to_list (Array.map string_of_int a))

(* (a) the as_of read at the last durable commit LSN reconstructs
   exactly the live committed state — random scripts, every engine,
   both backends, through a crash + restart (which rewrites the log
   under eager/lazy). Updates above that LSN belong to transactions
   without a durable commit, so both sides exclude them. *)
let asof_final_matches_live =
  QCheck.Test.make ~count:120 ~name:"as_of at last commit LSN = live state"
    arb (fun p ->
      with_db p ~tag:"asof" (fun db ->
          let script = script_of p in
          let at = crash_point p script in
          ignore (Driver.run_to_crash db script ~crash_at:at);
          (match List.rev (Temporal.commit_points db) with
          | [] -> ()
          | (l, _) :: _ ->
              let snap = Temporal.snapshot_at db l in
              let live = Db.peek_all db in
              if snap <> live then
                QCheck.Test.fail_reportf
                  "as_of %d: [%s]@ live: [%s]" (Lsn.to_int l) (pp_arr snap)
                  (pp_arr live));
          true))

(* also exact at every intermediate commit point, against the
   LSN-filtered oracle replay (scripts are conflict-free, so script
   order = LSN order) *)
let asof_matches_oracle_at_every_commit =
  QCheck.Test.make ~count:60
    ~name:"as_of at each commit LSN matches the LSN-filtered oracle" arb
    (fun p ->
      with_db p ~tag:"asofall" (fun db ->
          let script = script_of p in
          let at = crash_point p script in
          let xid_map = Hashtbl.create 16 in
          (try
             Driver.run ~upto:at ~xid_map db script;
             Db.crash db
           with Ariesrh_fault.Fault.Injected_crash _ -> ());
          ignore (Db.recover db);
          let commit_lsn = Xid.Tbl.create 32 in
          List.iter
            (fun (l, x) ->
              if not (Xid.Tbl.mem commit_lsn x) then
                Xid.Tbl.add commit_lsn x l)
            (Temporal.commit_points db);
          let committed_at l t =
            match Hashtbl.find_opt xid_map t with
            | None -> false
            | Some x -> (
                match Xid.Tbl.find_opt commit_lsn x with
                | Some cl -> Lsn.(cl <= l)
                | None -> false)
          in
          List.iter
            (fun (l, _) ->
              let want =
                Oracle.expected_for ~n_objects ~committed:(committed_at l)
                  ~crash_at:at script
              in
              let got = Temporal.snapshot_at db l in
              if got <> want then
                QCheck.Test.fail_reportf "at %d: got [%s] want [%s]"
                  (Lsn.to_int l) (pp_arr got) (pp_arr want))
            (Temporal.commit_points db);
          true))

(* (b) per-object history attribution (holder + resolution status)
   agrees with the trace ring's independent Obs.Lineage reconstruction,
   across delegate chains that cross a crash *)
let history_agrees_with_lineage =
  QCheck.Test.make ~count:60
    ~name:"history attribution agrees with Obs.Lineage across a crash" arb
    (fun p ->
      with_db p ~tag:"lineage" ~tracing:true (fun db ->
          let script = script_of p in
          let at = crash_point p script in
          ignore (Driver.run_to_crash db script ~crash_at:at);
          let upto = (Temporal.coverage db).Temporal.upto in
          for o = 0 to n_objects - 1 do
            List.iter
              (fun (v : Temporal.version) ->
                match Temporal.lineage_check db v with
                | `Agree | `No_data -> ()
                | `Disagree msg ->
                    QCheck.Test.fail_reportf "ob%d lsn %d: %s" o
                      (Lsn.to_int v.v_lsn) msg)
              (Temporal.history db ~upto (Oid.of_int o))
          done;
          true))

(* (c) coverage is all-or-nothing: after the prefix is truncated, an
   attached archive bridging from genesis keeps every below-horizon
   read exact (same answer as before truncation), and without one
   every read raises the typed History_unavailable — never a silently
   partial reconstruction *)
let truncation_bridges_or_refuses =
  QCheck.Test.make ~count:40
    ~name:"below-horizon as_of: archive-exact or typed refusal"
    QCheck.(pair arb bool)
    (fun (p, with_archive) ->
      with_db p ~tag:"trunc" (fun db ->
          if with_archive then ignore (Db.attach_archive db);
          Driver.run db (script_of p);
          match Temporal.commit_points db with
          | [] -> true
          | cps ->
              let l, _ = List.nth cps (List.length cps / 2) in
              let before = Temporal.snapshot_at db l in
              Db.checkpoint db;
              ignore (Db.truncate_log db);
              let truncated =
                Lsn.(
                  Log_store.truncated_below (Db.log_store db) > Lsn.first)
              in
              (if with_archive then begin
                 let after = Temporal.snapshot_at db l in
                 if after <> before then
                   QCheck.Test.fail_reportf
                     "archive bridge not exact at %d: [%s] vs [%s]"
                     (Lsn.to_int l) (pp_arr after) (pp_arr before);
                 if truncated && not (Temporal.coverage db).Temporal.bridged
                 then QCheck.Test.fail_reportf "truncated but not bridged"
               end
               else if truncated then
                 match Temporal.snapshot_at db l with
                 | got ->
                     QCheck.Test.fail_reportf
                       "answered [%s] below an unbridged horizon"
                       (pp_arr got)
                 | exception Errors.History_unavailable _ -> ()
               else if Temporal.snapshot_at db l <> before then
                 QCheck.Test.fail_reportf "untruncated answer changed");
              true))

(* --- deterministic reenactment: delegated-then-rewritten --- *)

(* t1 invokes an update on ob0, delegates ob0 to t2, both commit; t2
   also writes ob1 itself. The explain report for t2 must show the
   received operation with provenance t1, and name the durable record
   that moved responsibility. *)
let delegated_pair impl =
  let db = Driver.fresh_db ~impl ~n_objects:4 () in
  let t1 = Db.begin_txn db in
  let t2 = Db.begin_txn db in
  Db.add db t1 (Oid.of_int 0) 5;
  Db.delegate db ~from_:t1 ~to_:t2 (Oid.of_int 0);
  Db.commit db t1;
  Db.add db t2 (Oid.of_int 1) 2;
  Db.commit db t2;
  (db, t1, t2)

let value e oid =
  match List.assoc_opt (Oid.of_int oid) e with
  | Some v -> v
  | None -> Alcotest.failf "report has no entry for ob%d" oid

let check_reenactment ~via_delegate db t1 t2 =
  let e2 = Temporal.explain db t2 in
  Alcotest.(check bool) "t2 committed" true (e2.Temporal.e_commit <> None);
  Alcotest.(check int) "t2 received one op" 1
    (List.length e2.Temporal.e_received);
  (match e2.Temporal.e_divergences with
  | [ d ] ->
      Alcotest.(check bool) "provenance is t1" true
        (Xid.equal d.Temporal.d_provenance t1);
      Alcotest.(check bool) "attribution is t2" true
        (Xid.equal d.Temporal.d_attribution t2);
      (match d.Temporal.d_direction with
      | `Received -> ()
      | `Delegated_away -> Alcotest.fail "t2 should have received");
      (match (via_delegate, d.Temporal.d_via) with
      | true, `Delegate _ -> ()
      | false, `Surgery _ -> ()
      | _, `Unknown -> Alcotest.fail "divergence lost its durable record"
      | true, `Surgery _ -> Alcotest.fail "expected a Delegate record"
      | false, `Delegate _ -> Alcotest.fail "expected an in-place surgery")
  | ds -> Alcotest.failf "t2: %d divergences, wanted 1" (List.length ds));
  (* what t2 replayed itself vs what the rewritten log attributes to it *)
  Alcotest.(check int) "t2 replayed ob0" 0 (value e2.Temporal.e_replayed 0);
  Alcotest.(check int) "t2 attributed ob0" 5
    (value e2.Temporal.e_attributed 0);
  Alcotest.(check int) "t2 attributed ob1" 2
    (value e2.Temporal.e_attributed 1);
  Alcotest.(check int) "as_of at t2's commit, ob0" 5
    (value e2.Temporal.e_as_of_end 0);
  (* the delegator's report shows the mirror image *)
  let e1 = Temporal.explain db t1 in
  (match e1.Temporal.e_divergences with
  | [ d ] -> (
      match d.Temporal.d_direction with
      | `Delegated_away -> ()
      | `Received -> Alcotest.fail "t1 should have delegated away")
  | ds -> Alcotest.failf "t1: %d divergences, wanted 1" (List.length ds));
  Alcotest.(check int) "t1 replayed ob0" 5 (value e1.Temporal.e_replayed 0);
  Alcotest.(check int) "t1 attributed ob0" 0
    (value e1.Temporal.e_attributed 0)

let reenact_rh () =
  let db, t1, t2 = delegated_pair Config.Rh in
  check_reenactment ~via_delegate:true db t1 t2;
  Db.close db

let reenact_eager () =
  (* eager rewrites history in place at delegation: the update's writer
     is t2 as the log reads now, t1 only survives in the surgery's
     before-image *)
  let db, t1, t2 = delegated_pair Config.Eager in
  (match Temporal.history db (Oid.of_int 0) with
  | [ v ] ->
      Alcotest.(check bool) "writer rewritten to t2" true
        (Xid.equal v.Temporal.v_writer t2);
      Alcotest.(check bool) "provenance recovered as t1" true
        (Xid.equal v.Temporal.v_provenance t1);
      Alcotest.(check bool) "carries a committed surgery" true
        (List.exists
           (fun (s : Temporal.surgery) -> s.Temporal.s_committed)
           v.Temporal.v_surgeries)
  | vs -> Alcotest.failf "ob0: %d versions, wanted 1" (List.length vs));
  check_reenactment ~via_delegate:false db t1 t2;
  Db.close db

let reenact_lazy_committed () =
  (* lazy defers rewriting to restart, and the splice only fires while
     undoing a loser: a fully committed delegated pair keeps its
     Delegate record as the authoritative transfer, before and after a
     restart *)
  let db, t1, t2 = delegated_pair Config.Lazy in
  check_reenactment ~via_delegate:true db t1 t2;
  Db.crash db;
  ignore (Db.recover db);
  check_reenactment ~via_delegate:true db t1 t2;
  Db.close db

let reenact_lazy_spliced () =
  (* the lazy splice proper: t2 receives ob0 and then dies uncommitted.
     Restart undoes the delegated-in update as t2's and splices the
     record in place — writer becomes t2, t1 survives only in the
     surgery's before-image, and the CLR is attributed to t2 *)
  let db = Driver.fresh_db ~impl:Config.Lazy ~n_objects:4 () in
  let t1 = Db.begin_txn db in
  let t2 = Db.begin_txn db in
  Db.add db t1 (Oid.of_int 0) 5;
  Db.delegate db ~from_:t1 ~to_:t2 (Oid.of_int 0);
  Db.commit db t1;
  Db.crash db;
  ignore (Db.recover db);
  (match Temporal.history db (Oid.of_int 0) with
  | [ v ] ->
      Alcotest.(check bool) "writer spliced to t2" true
        (Xid.equal v.Temporal.v_writer t2);
      Alcotest.(check bool) "provenance recovered as t1" true
        (Xid.equal v.Temporal.v_provenance t1);
      Alcotest.(check bool) "carries a committed surgery" true
        (List.exists
           (fun (s : Temporal.surgery) -> s.Temporal.s_committed)
           v.Temporal.v_surgeries);
      (match v.Temporal.v_status with
      | Temporal.Compensated { by; _ } ->
          Alcotest.(check bool) "compensated by t2" true (Xid.equal by t2)
      | s -> Alcotest.failf "status %s, wanted compensated"
               (Temporal.status_str s))
  | vs -> Alcotest.failf "ob0: %d versions, wanted 1" (List.length vs));
  let e = Temporal.explain db t2 in
  Alcotest.(check bool) "t2 has no durable commit" true
    (e.Temporal.e_commit = None);
  (match e.Temporal.e_divergences with
  | [ d ] -> (
      Alcotest.(check bool) "provenance is t1" true
        (Xid.equal d.Temporal.d_provenance t1);
      (match d.Temporal.d_direction with
      | `Received -> ()
      | `Delegated_away -> Alcotest.fail "t2 should have received");
      match d.Temporal.d_via with
      | `Surgery _ -> ()
      | `Delegate _ -> Alcotest.fail "splice should hide behind surgery"
      | `Unknown -> Alcotest.fail "divergence lost its durable record")
  | ds -> Alcotest.failf "t2: %d divergences, wanted 1" (List.length ds));
  (* the rolled-back delegation contributes nothing anywhere *)
  Alcotest.(check int) "t2 attributed ob0" 0
    (value e.Temporal.e_attributed 0);
  Alcotest.(check int) "as_of at the durable horizon, ob0" 0
    (value e.Temporal.e_as_of_end 0);
  Db.close db

let explain_unknown_txn () =
  let db = Driver.fresh_db ~n_objects:4 () in
  (match Temporal.explain db (Xid.of_int 999) with
  | _ -> Alcotest.fail "explain of an unknown xid must raise"
  | exception Errors.No_such_txn _ -> ());
  Db.close db

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      asof_final_matches_live;
      asof_matches_oracle_at_every_commit;
      history_agrees_with_lineage;
      truncation_bridges_or_refuses;
    ]
  @ [
      Alcotest.test_case "reenact delegated txn (rh)" `Quick reenact_rh;
      Alcotest.test_case "reenact delegated-then-rewritten (eager)" `Quick
        reenact_eager;
      Alcotest.test_case "reenact delegated pair (lazy, across restart)"
        `Quick reenact_lazy_committed;
      Alcotest.test_case "reenact delegated-then-spliced (lazy loser)"
        `Quick reenact_lazy_spliced;
      Alcotest.test_case "explain refuses unknown xid" `Quick
        explain_unknown_txn;
    ]
