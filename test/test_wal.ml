(* Log record codec and simulated stable log. *)

open Ariesrh_types
open Ariesrh_wal

let xid = Xid.of_int
let oid = Oid.of_int
let pid = Page_id.of_int
let lsn = Lsn.of_int

let sample_records =
  [
    Record.mk (xid 1) ~prev:Lsn.nil Record.Begin;
    Record.mk (xid 1) ~prev:(lsn 1)
      (Record.Update
         { oid = oid 3; page = pid 0; op = Record.Set { before = 0; after = 42 } });
    Record.mk (xid 2) ~prev:(lsn 2)
      (Record.Update { oid = oid 7; page = pid 1; op = Record.Add (-5) });
    Record.mk (xid 1) ~prev:(lsn 2) Record.Commit;
    Record.mk (xid 1) ~prev:(lsn 4) Record.End;
    Record.mk (xid 2) ~prev:(lsn 3) Record.Abort;
    Record.mk (xid 2) ~prev:(lsn 6)
      (Record.Clr
         {
           upd = { oid = oid 7; page = pid 1; op = Record.Add 5 };
           undone = lsn 3;
           invoker = xid 2;
           undo_next = Lsn.nil;
         });
    Record.mk (xid 3) ~prev:(lsn 9)
      (Record.Delegate { tee = xid 4; tee_prev = lsn 5; oid = oid 2; op = None });
    Record.mk (xid 3) ~prev:(lsn 9)
      (Record.Delegate
         {
           tee = xid 4;
           tee_prev = lsn 5;
           oid = oid 2;
           op = Some (lsn 4, xid 3);
         });
    Record.mk (xid 4) ~prev:(lsn 12) Record.Anchor;
    Record.mk_system
      (Record.Rewrite_begin { deleg = None; targets = [ lsn 3; lsn 7 ] });
    Record.mk_system
      (Record.Rewrite_begin
         { deleg = Some (xid 3, xid 4, oid 2); targets = [ lsn 5 ] });
    Record.mk_system
      (Record.Rewrite_clr
         {
           target = lsn 5;
           (* real encoded records: the images a live surgery stores *)
           before =
             Record.encode
               (Record.mk (xid 3) ~prev:(lsn 2)
                  (Record.Update
                     { oid = oid 2; page = pid 0; op = Record.Add 1 }));
           after =
             Record.encode
               (Record.mk (xid 4) ~prev:(lsn 2)
                  (Record.Update
                     { oid = oid 2; page = pid 0; op = Record.Add 1 }));
         });
    Record.mk_system (Record.Rewrite_end { begin_lsn = lsn 13; committed = true });
    Record.mk_system
      (Record.Rewrite_end { begin_lsn = lsn 13; committed = false });
    Record.mk_system
      (Record.Xfer_out
         { xfer_id = 9; hop = 3; oid = oid 5; target = 2; value = -17 });
    Record.mk_system
      (Record.Xfer_in
         {
           xfer_id = 9;
           hop = 3;
           oid = oid 5;
           page = pid 0;
           source = 1;
           before = 4;
           value = -17;
         });
    Record.mk_system (Record.Xfer_end { xfer_id = 9; oid = oid 5; committed = true });
    Record.mk_system
      (Record.Xfer_end { xfer_id = 10; oid = oid 6; committed = false });
    Record.mk_system Record.Ckpt_begin;
    Record.mk_system
      (Record.Ckpt_end
         {
           ck_txns =
             [
               {
                 Record.ck_xid = xid 3;
                 ck_status = Record.Ck_active;
                 ck_last_lsn = lsn 10;
                 ck_undo_next = lsn 9;
               };
               {
                 Record.ck_xid = xid 4;
                 ck_status = Record.Ck_committed;
                 ck_last_lsn = lsn 11;
                 ck_undo_next = Lsn.nil;
               };
             ];
           ck_dpt = [ (pid 0, lsn 2); (pid 1, lsn 3) ];
           ck_obs =
             [
               {
                 Record.ck_owner = xid 4;
                 ck_oid = oid 2;
                 ck_deleg = Some (xid 3);
                 ck_scopes =
                   [
                     {
                       Record.ck_invoker = xid 3;
                       ck_first = lsn 2;
                       ck_last = lsn 9;
                     };
                   ];
               };
             ];
         });
  ]

let roundtrip () =
  List.iteri
    (fun i r ->
      match Record.decode (Record.encode r) with
      | Ok r' when r = r' -> ()
      | Ok r' ->
          Alcotest.failf "record %d did not roundtrip: %a vs %a" i Record.pp r
            Record.pp r'
      | Error e ->
          Alcotest.failf "record %d did not decode: %a" i
            Record.pp_decode_error e)
    sample_records

let checksum_detects_corruption () =
  let s = Record.encode (List.nth sample_records 1) in
  let b = Bytes.of_string s in
  Bytes.set b 6 (Char.chr (Char.code (Bytes.get b 6) lxor 0xff));
  match Record.decode (Bytes.to_string b) with
  | Error Record.Checksum_mismatch -> ()
  | Ok _ -> Alcotest.fail "corrupted record decoded"
  | Error e ->
      Alcotest.failf "wrong error: %a" Record.pp_decode_error e

let truncation_detected () =
  let s = Record.encode (List.nth sample_records 1) in
  match Record.decode (String.sub s 0 (String.length s - 1)) with
  | Ok _ -> Alcotest.fail "truncated record decoded"
  | Error (Record.Truncated | Record.Checksum_mismatch) -> ()
  | Error e ->
      Alcotest.failf "wrong error: %a" Record.pp_decode_error e

(* random record generator for the codec property *)
let gen_op =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun before after -> Record.Set { before; after })
          (int_range (-1000000) 1000000)
          (int_range (-1000000) 1000000);
        map (fun d -> Record.Add d) (int_range (-1000) 1000);
      ])

let gen_update =
  QCheck.Gen.(
    map3
      (fun o p op -> { Record.oid = oid o; page = pid p; op })
      (int_bound 500) (int_bound 100) gen_op)

let gen_record =
  QCheck.Gen.(
    let* x = int_range 1 1000 in
    let* prev = int_bound 1000 in
    let mk body = Record.mk (xid x) ~prev:(lsn prev) body in
    oneof
      [
        return (mk Record.Begin);
        map (fun u -> mk (Record.Update u)) gen_update;
        return (mk Record.Commit);
        return (mk Record.Abort);
        return (mk Record.End);
        map3
          (fun u undone inv ->
            mk
              (Record.Clr
                 {
                   upd = u;
                   undone = lsn undone;
                   invoker = xid inv;
                   undo_next = lsn prev;
                 }))
          gen_update (int_bound 1000) (int_range 1 1000);
        map3
          (fun tee tp o ->
            mk
              (Record.Delegate
                 { tee = xid tee; tee_prev = lsn tp; oid = oid o; op = None }))
          (int_range 1 1000) (int_bound 1000) (int_bound 500);
        return (mk Record.Anchor);
        map2
          (fun targets deleg ->
            Record.mk_system
              (Record.Rewrite_begin
                 {
                   deleg =
                     Option.map
                       (fun (a, b, o) -> (xid a, xid b, oid o))
                       deleg;
                   targets = List.map lsn targets;
                 }))
          (list_size (int_bound 8) (int_bound 1000))
          (option (triple (int_range 1 1000) (int_range 1 1000) (int_bound 500)));
        map3
          (fun target before after ->
            Record.mk_system (Record.Rewrite_clr { target = lsn target; before; after }))
          (int_bound 1000)
          (string_size (int_bound 40))
          (string_size (int_bound 40));
        map2
          (fun b committed ->
            Record.mk_system
              (Record.Rewrite_end { begin_lsn = lsn b; committed }))
          (int_bound 1000) bool;
      ])

let codec_roundtrip_prop =
  QCheck.Test.make ~count:500 ~name:"codec roundtrips on random records"
    (QCheck.make gen_record)
    (fun r -> Record.decode (Record.encode r) = Ok r)

(* rendering: forensic trails print surgery records by tag, and the CLR
   images print as byte counts, never as raw bytes *)
let rewrite_records_render () =
  let printed body = Format.asprintf "%a" Record.pp (Record.mk_system body) in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "begin names the delegation" true
    (contains
       (printed
          (Record.Rewrite_begin
             { deleg = Some (xid 3, xid 4, oid 2); targets = [ lsn 5 ] }))
       "rewrite_begin ob2: t3->t4");
  Alcotest.(check bool) "clr prints image sizes" true
    (contains
       (printed
          (Record.Rewrite_clr { target = lsn 5; before = "abc"; after = "xyz" }))
       "before=3B after=3B");
  Alcotest.(check bool) "end prints the verdict" true
    (contains
       (printed (Record.Rewrite_end { begin_lsn = lsn 13; committed = false }))
       "aborted")

let store_append_read () =
  let log = Log_store.create () in
  let lsns = List.map (Log_store.append log) sample_records in
  Alcotest.(check int) "dense lsns" (List.length sample_records)
    (Lsn.to_int (Log_store.head log));
  List.iter2
    (fun l r ->
      Alcotest.(check bool) "read back" true (Log_store.read log l = r))
    lsns sample_records

let store_crash_drops_tail () =
  let log = Log_store.create () in
  let l1 = Log_store.append log (List.nth sample_records 0) in
  let _l2 = Log_store.append log (List.nth sample_records 1) in
  Log_store.flush log ~upto:l1;
  let _l3 = Log_store.append log (List.nth sample_records 2) in
  Log_store.crash log;
  Alcotest.(check int) "only flushed survives" 1 (Log_store.length log);
  (* appending after crash reuses the LSNs of the lost tail *)
  let l2' = Log_store.append log (List.nth sample_records 3) in
  Alcotest.(check int) "lsn 2 reissued" 2 (Lsn.to_int l2')

let store_flush_clamps () =
  let log = Log_store.create () in
  let l1 = Log_store.append log (List.nth sample_records 0) in
  Log_store.flush log ~upto:(lsn 999);
  Alcotest.(check int) "durable clamped to head" (Lsn.to_int l1)
    (Lsn.to_int (Log_store.durable log))

let store_master () =
  let log = Log_store.create () in
  let l1 = Log_store.append log (List.nth sample_records 0) in
  Alcotest.check_raises "master must be durable"
    (Invalid_argument "Log_store.set_master: checkpoint record not durable")
    (fun () -> Log_store.set_master log l1);
  Log_store.flush log ~upto:l1;
  Log_store.set_master log l1;
  Log_store.crash log;
  Alcotest.(check int) "master survives crash" 1 (Lsn.to_int (Log_store.master log))

let store_rewrite () =
  let log = Log_store.create () in
  let r = List.nth sample_records 1 in
  let l = Log_store.append log r in
  Log_store.flush log ~upto:l;
  let r' = Record.set_writer r (xid 9) in
  Log_store.rewrite log l r';
  Alcotest.(check bool) "rewritten in place" true (Log_store.read log l = r');
  Alcotest.(check int) "rewrite counted" 1 (Log_store.stats log).rewrites

let store_iteration () =
  let log = Log_store.create () in
  List.iter (fun r -> ignore (Log_store.append log r)) sample_records;
  let fwd = ref [] in
  Log_store.iter_forward log ~from:Lsn.nil (fun l _ -> fwd := Lsn.to_int l :: !fwd);
  Alcotest.(check (list int)) "forward order"
    (List.init (List.length sample_records) (fun i -> i + 1))
    (List.rev !fwd);
  let bwd = ref [] in
  Log_store.iter_backward log ~from:Lsn.nil (fun l _ -> bwd := Lsn.to_int l :: !bwd);
  Alcotest.(check (list int)) "backward order"
    (List.init (List.length sample_records) (fun i -> i + 1))
    !bwd

let sequential_vs_random_io () =
  let log = Log_store.create ~page_size:256 () in
  let lsns = ref [] in
  for i = 1 to 200 do
    let r =
      Record.mk (xid 1) ~prev:(lsn (i - 1))
        (Record.Update
           { oid = oid 1; page = pid 0; op = Record.Set { before = i; after = i } })
    in
    lsns := Log_store.append log r :: !lsns
  done;
  Log_store.flush log ~upto:(Log_store.head log);
  (* sequential sweep: few seeks *)
  let before = (Log_store.stats log).random_seeks in
  Log_store.iter_forward log ~from:Lsn.nil (fun _ _ -> ());
  let seq_seeks = (Log_store.stats log).random_seeks - before in
  (* ping-pong access: many seeks *)
  let before = (Log_store.stats log).random_seeks in
  for i = 1 to 50 do
    ignore (Log_store.read log (lsn i));
    ignore (Log_store.read log (lsn (201 - i)))
  done;
  let rnd_seeks = (Log_store.stats log).random_seeks - before in
  Alcotest.(check int) "sequential sweep seeks nothing" 0 seq_seeks;
  Alcotest.(check bool)
    (Printf.sprintf "random access seeks a lot (%d)" rnd_seeks)
    true (rnd_seeks > 50)

let prev_for_delegate () =
  let d = List.nth sample_records 7 in
  Alcotest.(check int) "delegator side" 9 (Lsn.to_int (Record.prev_for d (xid 3)));
  Alcotest.(check int) "delegatee side" 5 (Lsn.to_int (Record.prev_for d (xid 4)));
  Alcotest.check_raises "stranger"
    (Invalid_argument "Record.prev_for: not on this transaction's chain")
    (fun () -> ignore (Record.prev_for d (xid 9)))

let set_prev_for_delegate () =
  let d = List.nth sample_records 7 in
  let d' = Record.set_prev_for d (xid 4) (lsn 77) in
  Alcotest.(check int) "tee side patched" 77 (Lsn.to_int (Record.prev_for d' (xid 4)));
  Alcotest.(check int) "tor side untouched" 9 (Lsn.to_int (Record.prev_for d' (xid 3)));
  let d'' = Record.set_prev_for d (xid 3) (lsn 66) in
  Alcotest.(check int) "tor side patched" 66 (Lsn.to_int (Record.prev_for d'' (xid 3)))

let suite =
  [
    Alcotest.test_case "codec roundtrip (samples)" `Quick roundtrip;
    Alcotest.test_case "checksum detects corruption" `Quick checksum_detects_corruption;
    Alcotest.test_case "truncation detected" `Quick truncation_detected;
    Alcotest.test_case "rewrite records render" `Quick rewrite_records_render;
    QCheck_alcotest.to_alcotest codec_roundtrip_prop;
    Alcotest.test_case "store append/read" `Quick store_append_read;
    Alcotest.test_case "store crash drops tail" `Quick store_crash_drops_tail;
    Alcotest.test_case "store flush clamps" `Quick store_flush_clamps;
    Alcotest.test_case "store master record" `Quick store_master;
    Alcotest.test_case "store rewrite in place" `Quick store_rewrite;
    Alcotest.test_case "store iteration" `Quick store_iteration;
    Alcotest.test_case "sequential vs random io model" `Quick sequential_vs_random_io;
    Alcotest.test_case "prev_for on delegate records" `Quick prev_for_delegate;
    Alcotest.test_case "set_prev_for on delegate records" `Quick set_prev_for_delegate;
  ]
