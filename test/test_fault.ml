(* Fault injection and hardened restart: typed decode errors, torn log
   tails, truncate x crash boundaries, demand-driven torn-page repair,
   obliteration under a corrupt tail (§4.1), and crash-storm smoke. *)

open Ariesrh_types
open Ariesrh_wal
open Ariesrh_core
open Ariesrh_workload
module Fault = Ariesrh_fault.Fault

let xid = Xid.of_int
let oid = Oid.of_int
let lsn = Lsn.of_int

let mk ?fault ?backend ?(impl = Config.Rh) ?(buffer_capacity = 8) () =
  Db.create ?fault ?backend
    (Config.make ~n_objects:64 ~objects_per_page:4 ~buffer_capacity ~impl
       ~locking:true ())

(* --- typed decode errors ------------------------------------------- *)

let decode_typed_errors () =
  let r =
    Record.mk (xid 1) ~prev:Lsn.nil
      (Record.Update
         {
           oid = oid 3;
           page = Page_id.of_int 0;
           op = Record.Set { before = 0; after = 42 };
         })
  in
  let s = Record.encode r in
  (match Record.decode "" with
  | Error Record.Truncated -> ()
  | _ -> Alcotest.fail "empty string should decode as Truncated");
  (match Record.decode (String.sub s 0 (String.length s / 2)) with
  | Error (Record.Truncated | Record.Checksum_mismatch) -> ()
  | Ok _ -> Alcotest.fail "half a record decoded"
  | Error e ->
      Alcotest.failf "unexpected error %a" Record.pp_decode_error e);
  let b = Bytes.of_string s in
  let mid = String.length s / 2 in
  Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0x10));
  (match Record.decode (Bytes.to_string b) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bit flip went undetected")

(* --- torn log tail at the store level ------------------------------ *)

let append_updates log n =
  for i = 1 to n do
    ignore
      (Log_store.append log
         (Record.mk (xid i) ~prev:Lsn.nil
            (Record.Update
               {
                 oid = oid i;
                 page = Page_id.of_int 0;
                 op = Record.Add i;
               })))
  done

let tail_tear_amputates backend () =
  let fault = Fault.create ~seed:3L () in
  let log = Log_store.create ~fault ~backend:(backend "fault-wal") () in
  append_updates log 3;
  Log_store.flush log ~upto:(lsn 3);
  append_updates log 1;
  Fault.set_tear_log_on_crash fault true;
  Fault.arm_crash_in fault 1;
  (try
     Log_store.flush log ~upto:(lsn 4);
     Alcotest.fail "armed flush did not crash"
   with Fault.Injected_crash _ -> ());
  Log_store.crash log;
  (* the record made it to "disk" but its tail page write was torn *)
  Alcotest.(check int) "durable before amputation" 4
    (Lsn.to_int (Log_store.durable log));
  (match Log_store.read_result log (lsn 4) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "torn tail record decoded");
  let dropped = Log_store.recover_tail log in
  Alcotest.(check int) "one record amputated" 1 (List.length dropped);
  Alcotest.(check int) "amputated_total counts it" 1
    (Log_store.amputated_total log);
  Alcotest.(check int) "durable after amputation" 3
    (Lsn.to_int (Log_store.durable log));
  (* the freed LSN is reused as if the record had never been flushed *)
  append_updates log 1;
  Alcotest.(check int) "LSN reused" 4 (Lsn.to_int (Log_store.head log));
  Alcotest.(check bool) "intact prefix scans clean" true
    (Log_store.iter_valid_forward log ~from:Lsn.first (fun _ _ -> ())
    = None)

(* --- truncate x crash / flush boundaries --------------------------- *)

let truncate_then_crash () =
  let log = Log_store.create () in
  append_updates log 5;
  Log_store.flush log ~upto:(lsn 5);
  Log_store.set_master log (lsn 4);
  Alcotest.(check int) "two reclaimed" 2
    (Log_store.truncate log ~below:(lsn 3));
  Log_store.crash log;
  Alcotest.(check int) "truncation point survives crash" 3
    (Lsn.to_int (Log_store.truncated_below log));
  Alcotest.(check int) "master survives crash" 4
    (Lsn.to_int (Log_store.master log));
  Alcotest.(check bool) "clean tail after crash" true
    (Log_store.recover_tail log = []);
  (try
     ignore (Log_store.read log (lsn 1));
     Alcotest.fail "reading a reclaimed LSN should raise"
   with Invalid_argument _ -> ());
  ignore (Log_store.read log (lsn 3));
  append_updates log 1;
  Alcotest.(check int) "LSNs never renumbered" 6
    (Lsn.to_int (Log_store.head log))

let truncate_with_unflushed_tail () =
  let log = Log_store.create () in
  append_updates log 3;
  Log_store.flush log ~upto:(lsn 2);
  Log_store.set_master log (lsn 2);
  (* guard rails: reclaiming into the volatile tail or past the master
     checkpoint must be refused *)
  (try
     ignore (Log_store.truncate log ~below:(lsn 3));
     Alcotest.fail "truncate past master should raise"
   with Invalid_argument _ -> ());
  Alcotest.(check int) "one reclaimed" 1
    (Log_store.truncate log ~below:(lsn 2));
  Log_store.crash log;
  Alcotest.(check int) "unflushed tail gone" 2
    (Lsn.to_int (Log_store.head log));
  Alcotest.(check bool) "nothing to amputate" true
    (Log_store.recover_tail log = []);
  ignore (Log_store.read log (lsn 2));
  (try
     ignore (Log_store.read log (lsn 1));
     Alcotest.fail "reclaimed LSN readable after crash"
   with Invalid_argument _ -> ())

(* --- torn data pages: detect by checksum, repair on demand --------- *)

let torn_page_repaired_on_fetch backend () =
  let fault = Fault.create ~seed:11L () in
  let db = mk ~fault ~backend:(backend "fault-torn") ~buffer_capacity:4 () in
  Fault.set_tear_data_every fault 1;
  let t = Db.begin_txn db in
  for i = 0 to 15 do
    Db.write db t (oid i) (100 + i)
  done;
  Db.commit db t;
  Db.shutdown db;
  (* every page write above was torn; stop tearing so repairs stick *)
  Fault.set_tear_data_every fault 0;
  Db.crash db;
  ignore (Db.recover db);
  for i = 0 to 15 do
    Alcotest.(check int)
      (Printf.sprintf "object %d repaired" i)
      (100 + i)
      (Db.peek db (oid i))
  done;
  Alcotest.(check bool)
    (Printf.sprintf "some pages were repaired (%d)" (Db.repairs_total db))
    true
    (Db.repairs_total db > 0);
  Alcotest.(check bool) "engine invariants hold" true
    (Db.validate db = Ok ())

(* --- §4.1 obliteration: a corrupt commit tail must not resurrect a
       delegated update ---------------------------------------------- *)

let obliteration_script db fault ~tear =
  let t0 = Db.begin_txn db in
  let t1 = Db.begin_txn db in
  Db.add db t0 (oid 0) 5;
  Db.delegate db ~from_:t0 ~to_:t1 (oid 0);
  Fault.set_tear_log_on_crash fault tear;
  Fault.arm_crash_in fault 1;
  (try
     Db.commit db t1;
     Alcotest.fail "commit force did not crash"
   with Fault.Injected_crash _ -> ());
  Fault.disarm_crash fault;
  Db.crash db;
  (t1, Db.recover db)

let corrupt_tail_obliterates_commit backend () =
  let fault = Fault.create ~seed:5L () in
  let db = mk ~fault ~backend:(backend "fault-obl") () in
  let t1, report = obliteration_script db fault ~tear:true in
  Alcotest.(check bool) "commit record amputated" true
    (Log_store.amputated_total (Db.log_store db) > 0);
  Alcotest.(check bool) "delegatee is a loser" true
    (Xid.Set.mem t1 report.losers);
  Alcotest.(check int) "delegated update obliterated" 0
    (Db.peek db (oid 0))

let intact_tail_preserves_commit backend () =
  let fault = Fault.create ~seed:5L () in
  let db = mk ~fault ~backend:(backend "fault-keep") () in
  let t1, report = obliteration_script db fault ~tear:false in
  Alcotest.(check int) "nothing amputated" 0
    (Log_store.amputated_total (Db.log_store db));
  Alcotest.(check bool) "delegatee is a winner" true
    (Xid.Set.mem t1 report.winners);
  Alcotest.(check int) "delegated update durable" 5 (Db.peek db (oid 0))

(* --- crash-storm smoke --------------------------------------------- *)

let small_spec = { Gen.default with Gen.n_steps = 48; n_objects = 16 }

let scripted_storm_clean () =
  let outcome = Crash_storm.run_script small_spec in
  if not (Crash_storm.ok outcome) then
    Alcotest.failf "scripted storm failed:@ %a" Crash_storm.pp_outcome
      outcome;
  Alcotest.(check bool)
    (Printf.sprintf "faults actually fired (%d)" outcome.fault_points)
    true
    (outcome.fault_points > 0);
  Alcotest.(check bool)
    (Printf.sprintf "nested crashes fired (%d)" outcome.nested_crashes)
    true
    (outcome.nested_crashes > 0)

let sim_storm_clean () =
  let sim = { Crash_storm.default_sim with steps = 250 } in
  let outcome = Crash_storm.run_sim ~sim () in
  if not (Crash_storm.ok outcome) then
    Alcotest.failf "sim storm failed:@ %a" Crash_storm.pp_outcome outcome;
  Alcotest.(check bool) "crashes fired" true (outcome.crashes > 0);
  Alcotest.(check bool) "recoveries completed" true
    (outcome.recoveries > 0)

(* Recovery stays idempotent and oracle-true whatever the seed: a tiny
   scripted storm per seed, every engine. *)
let storm_any_seed =
  QCheck.Test.make ~count:6 ~name:"storm passes for any seed"
    QCheck.(pair small_int (oneofl [ Config.Rh; Config.Eager; Config.Lazy ]))
    (fun (seed, impl) ->
      let config =
        {
          Crash_storm.default_config with
          seed = Int64.of_int (seed + 1);
          crash_step = 5;
        }
      in
      let spec = { Gen.default with Gen.n_steps = 24; n_objects = 12 } in
      let outcome = Crash_storm.run_script ~config ~impl spec in
      Crash_storm.ok outcome)

let per_backend =
  List.concat_map
    (fun (bname, backend) ->
      List.map
        (fun (name, f) ->
          Alcotest.test_case
            (Printf.sprintf "%s [%s]" name bname)
            `Quick (f backend))
        [
          ("torn log tail is amputated", tail_tear_amputates);
          ("torn pages repaired on fetch", torn_page_repaired_on_fetch);
          ("corrupt tail obliterates delegated commit",
           corrupt_tail_obliterates_commit);
          ("intact tail preserves delegated commit",
           intact_tail_preserves_commit);
        ])
    Test_backend.backends

let suite =
  [
    Alcotest.test_case "decode surfaces typed errors" `Quick
      decode_typed_errors;
    Alcotest.test_case "truncate then crash" `Quick truncate_then_crash;
    Alcotest.test_case "truncate with unflushed tail" `Quick
      truncate_with_unflushed_tail;
    Alcotest.test_case "scripted crash storm" `Quick scripted_storm_clean;
    Alcotest.test_case "sim crash storm" `Quick sim_storm_clean;
    QCheck_alcotest.to_alcotest storm_any_seed;
  ]
  @ per_backend
