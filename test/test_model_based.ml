(* Model-based property tests for the storage substrate and the scope
   algebra: random operation sequences compared against trivial
   reference models. *)

open Ariesrh_types
module Prng = Ariesrh_util.Prng
module Scope = Ariesrh_txn.Scope
module Ob_list = Ariesrh_txn.Ob_list
module Log_store = Ariesrh_wal.Log_store
module Record = Ariesrh_wal.Record

let seed_arb =
  QCheck.make ~print:Int64.to_string
    QCheck.Gen.(map Int64.of_int (int_bound 1_000_000))

(* --- log store vs a list model ------------------------------------ *)

let log_store_model =
  QCheck.Test.make ~count:300 ~name:"log store behaves like a list with a \
                                     durable prefix" seed_arb (fun seed ->
      let rng = Prng.create seed in
      let log = Log_store.create ~page_size:128 () in
      (* model: all appended records, durable watermark *)
      let model = ref [] in
      (* newest first *)
      let durable = ref 0 in
      let mk i =
        Record.mk (Xid.of_int 1) ~prev:Lsn.nil
          (Record.Update
             {
               oid = Oid.of_int (i mod 16);
               page = Page_id.of_int 0;
               op = Record.Add i;
             })
      in
      let steps = 40 + Prng.int rng 100 in
      let ok = ref true in
      for i = 1 to steps do
        match Prng.int rng 10 with
        | 0 | 1 | 2 | 3 | 4 ->
            let r = mk i in
            ignore (Log_store.append log r);
            model := r :: !model
        | 5 | 6 ->
            let upto = Prng.int rng (List.length !model + 1) in
            Log_store.flush log ~upto:(Lsn.of_int upto);
            durable := max !durable (min upto (List.length !model))
        | 7 ->
            Log_store.crash log;
            let n = List.length !model in
            model := List.filteri (fun i _ -> i >= n - !durable) !model
        | _ ->
            if List.length !model > 0 then begin
              let i = 1 + Prng.int rng (List.length !model) in
              let expected = List.nth !model (List.length !model - i) in
              if Log_store.read log (Lsn.of_int i) <> expected then ok := false
            end
      done;
      !ok
      && Lsn.to_int (Log_store.head log) = List.length !model
      && Lsn.to_int (Log_store.durable log) = !durable)

(* --- buffer pool vs an array model -------------------------------- *)

let buffer_pool_model =
  QCheck.Test.make ~count:300
    ~name:"buffer pool reads equal an array model under eviction pressure"
    seed_arb (fun seed ->
      let rng = Prng.create seed in
      let pages = 8 and slots = 4 in
      let disk = Ariesrh_storage.Disk.create ~pages ~slots_per_page:slots () in
      let pool =
        Ariesrh_storage.Buffer_pool.create
          ~capacity:(1 + Prng.int rng 4)
          ~disk
          ~wal_flush:(fun _ -> ())
          ()
      in
      let model = Array.make (pages * slots) 0 in
      let lsn = ref 0 in
      let ok = ref true in
      for _ = 1 to 200 do
        let p = Prng.int rng pages and s = Prng.int rng slots in
        let pid = Page_id.of_int p in
        match Prng.int rng 4 with
        | 0 | 1 ->
            incr lsn;
            let v = Prng.int rng 1000 in
            Ariesrh_storage.Buffer_pool.apply pool pid ~lsn:(Lsn.of_int !lsn)
              (fun page -> Ariesrh_storage.Page.set page s v);
            model.((p * slots) + s) <- v
        | 2 ->
            if
              Ariesrh_storage.Buffer_pool.read_object pool pid ~slot:s
              <> model.((p * slots) + s)
            then ok := false
        | _ -> Ariesrh_storage.Buffer_pool.flush_all pool
      done;
      (* after a final flush, the disk agrees with the model too *)
      Ariesrh_storage.Buffer_pool.flush_all pool;
      for p = 0 to pages - 1 do
        let page = Ariesrh_storage.Disk.read_page disk (Page_id.of_int p) in
        for s = 0 to slots - 1 do
          if Ariesrh_storage.Page.get page s <> model.((p * slots) + s) then
            ok := false
        done
      done;
      !ok)

(* --- scope algebra invariants -------------------------------------- *)

(* Random sequences of note_update / take / receive / split_out across a
   few owners; after every step, same-invoker same-object scopes must be
   pairwise disjoint across all lists, and every scope must cover only
   LSNs at which that invoker updated that object. *)
let scope_algebra =
  QCheck.Test.make ~count:400 ~name:"scope algebra preserves disjointness"
    seed_arb (fun seed ->
      let rng = Prng.create seed in
      let owners = Array.make 3 Ob_list.empty in
      let xid i = Xid.of_int (i + 1) in
      let lsn = ref 0 in
      (* ground truth: (invoker, oid, lsn) of every update *)
      let updates = ref [] in
      let ok = ref true in
      let check () =
        let scopes =
          Array.to_list owners |> List.concat_map Ob_list.all_scopes
        in
        let rec pairwise = function
          | [] -> ()
          | (s1 : Scope.t) :: rest ->
              List.iter
                (fun (s2 : Scope.t) ->
                  if
                    Xid.equal s1.invoker s2.invoker
                    && Oid.equal s1.oid s2.oid
                    && Scope.overlaps s1 s2
                  then ok := false)
                rest;
              pairwise rest
        in
        pairwise scopes
      in
      for _ = 1 to 60 do
        let o = Prng.int rng 3 in
        let oid = Oid.of_int (Prng.int rng 4) in
        (match Prng.int rng 5 with
        | 0 | 1 ->
            incr lsn;
            owners.(o) <-
              Ob_list.note_update owners.(o) ~owner:(xid o) ~oid
                (Lsn.of_int !lsn);
            updates := (xid o, oid, !lsn) :: !updates
        | 2 -> (
            (* whole-object delegation to another owner *)
            let dst = (o + 1 + Prng.int rng 2) mod 3 in
            match Ob_list.take owners.(o) oid with
            | None -> ()
            | Some (entry, rest) ->
                owners.(o) <- rest;
                owners.(dst) <-
                  Ob_list.receive owners.(dst) ~oid ~from_:(xid o)
                    (Ob_list.entry_scopes entry))
        | 3 -> (
            (* operation-granularity: split out one of this owner's own
               updates currently in its list *)
            let candidates =
              List.filter_map
                (fun (inv, uoid, l) ->
                  if
                    Oid.equal uoid oid
                    && List.exists
                         (fun (s : Scope.t) ->
                           Scope.covers s ~invoker:inv ~oid (Lsn.of_int l))
                         (Ob_list.scopes_of owners.(o) oid)
                  then Some (inv, l)
                  else None)
                !updates
            in
            match candidates with
            | [] -> ()
            | _ ->
                let inv, l =
                  List.nth candidates (Prng.int rng (List.length candidates))
                in
                let dst = (o + 1 + Prng.int rng 2) mod 3 in
                let moved, rest =
                  Ob_list.split_out owners.(o) ~oid ~invoker:inv (Lsn.of_int l)
                in
                owners.(o) <- rest;
                (match moved with
                | Some s ->
                    owners.(dst) <-
                      Ob_list.receive owners.(dst) ~oid ~from_:(xid o) [ s ]
                | None -> ()))
        | _ ->
            (* close an open scope, as a partial rollback would *)
            owners.(o) <- Ob_list.close_open owners.(o) oid);
        check ()
      done;
      (* final: responsibility is total and unique — every update is
         covered by exactly one live scope across all owners (a scope
         itself may cover no updates: split suffixes are legitimate
         potential ranges) *)
      let scopes = Array.to_list owners |> List.concat_map Ob_list.all_scopes in
      List.iter
        (fun (inv, uoid, l) ->
          let covering =
            List.length
              (List.filter
                 (fun s -> Scope.covers s ~invoker:inv ~oid:uoid (Lsn.of_int l))
                 scopes)
          in
          if covering <> 1 then ok := false)
        !updates;
      !ok)

let suite =
  [
    QCheck_alcotest.to_alcotest log_store_model;
    QCheck_alcotest.to_alcotest buffer_pool_model;
    QCheck_alcotest.to_alcotest scope_algebra;
  ]
