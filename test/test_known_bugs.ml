(* Historical-bug regression fixtures.

   Before the rewrite system transaction (DESIGN.md §8), eager
   delegation surgery was not crash-atomic: scripted storm, eager
   engine, seed 3, crash armed at the 39th I/O left a re-attributed
   update [127:upd(t13,+8)] durable with no durable responsibility
   transfer, and the quarantined repro in this file asserted the
   failure was still present. The surgery protocol fixed it — the live
   repro now runs (and must pass) in test_recovery.ml.

   What remains here is the forensic artifact that bug produced,
   committed as test/data/FORENSIC_crash_eager_seed3_io39.json. It
   pins the dump format consumers parse (jq pipelines, the triage
   notes in ROADMAP.md): the fixture must stay structurally
   well-formed JSON and keep the fields the post-mortem relied on —
   the mismatch signature, the orphaned update's lineage with its
   empty transfer list, the trace window, and the metrics snapshot. *)

let fixture = Filename.concat "data" "FORENSIC_crash_eager_seed3_io39.json"

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A structural scan sufficient for a format regression test without a
   JSON library: strings (with escapes) tokenize, braces and brackets
   nest and balance, and the document is a single object. *)
let check_json_structure body =
  let depth = ref 0 in
  let stack = ref [] in
  let i = ref 0 in
  let n = String.length body in
  let fail msg = Alcotest.failf "fixture not well-formed: %s (at byte %d)" msg !i in
  while !i < n do
    (match body.[!i] with
    | '"' ->
        incr i;
        let closed = ref false in
        while (not !closed) && !i < n do
          (match body.[!i] with
          | '\\' -> incr i
          | '"' -> closed := true
          | _ -> ());
          incr i
        done;
        if not !closed then fail "unterminated string";
        decr i
    | '{' ->
        incr depth;
        stack := '}' :: !stack
    | '[' ->
        incr depth;
        stack := ']' :: !stack
    | ('}' | ']') as c -> (
        match !stack with
        | top :: rest when Char.equal top c ->
            decr depth;
            stack := rest;
            if !depth = 0 then
              (* nothing but whitespace may follow the root object *)
              for j = !i + 1 to n - 1 do
                match body.[j] with
                | ' ' | '\n' | '\t' | '\r' -> ()
                | _ ->
                    i := j;
                    fail "trailing content after root object"
              done
        | _ -> fail "mismatched close")
    | _ -> ());
    incr i
  done;
  if !stack <> [] then fail "unbalanced braces/brackets";
  if not (String.length body > 0 && body.[0] = '{') then
    fail "root is not an object"

let fixture_still_parses () =
  Alcotest.(check bool) "fixture committed" true (Sys.file_exists fixture);
  let body = read_file fixture in
  check_json_structure body;
  (* the fields the seed-3 post-mortem consumed *)
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "dump contains %S" needle)
        true (contains body needle))
    [
      "\"kind\": \"crash\"";
      "\"engine\": \"eager\"";
      "\"seed\": \"3\"";
      "\"crash_io\": 39";
      "ob19: got 8 want 0";
      "restart not idempotent";
      "127:upd(t13,+8)";
      "\"responsible\"";
      "\"transfers\": []";
      "\"trace\"";
      "\"metrics\"";
      "ariesrh_txn_commits_total";
    ]

let suite =
  [
    Alcotest.test_case "seed-3 forensic fixture stays parseable" `Quick
      fixture_still_parses;
  ]
