(* Quarantined known-bug repros.

   Each case here pins a bug we know about but have NOT fixed: the test
   asserts the failure is still present, so the suite stays green while
   the bug exists and turns red the day somebody fixes it — at which
   point the case must be deleted (and the corresponding ROADMAP entry
   closed) as part of the fixing PR.

   These repros are distilled from forensic storm dumps; the committed
   reference artifact lives in test/data/. *)

open Ariesrh_core
open Ariesrh_workload

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Eager delegation surgery is not crash-atomic.

   Scripted storm, eager engine, seed 3, crash armed at the 39th I/O:
   after restart, object 19 reads 8 but the oracle says 0, and the
   restart is not idempotent. The forensic trail shows why: the log
   attributes the surviving LSN-127 update [upd(t13,+8)] to t13, but
   the trace ring shows it was invoked by t22 with no durable
   responsibility transfer — the eager engine's physical chain
   re-attribution hit the disk while the delegation that justified it
   did not. See ROADMAP.md and test/data/ for the full dump. *)
let eager_seed3_delegation_surgery_not_atomic () =
  let dir = "known_bug_forensics" in
  let config =
    { Crash_storm.default_config with
      seed = 3L;
      (* jump the crash-point escalation straight to the failing I/O *)
      crash_step = 39;
      forensic_dir = Some dir }
  in
  let spec =
    { Gen.default with n_objects = 32; n_steps = 160; p_delegate = 0.2 }
  in
  let o = Crash_storm.run_script ~config ~impl:Config.Eager spec in
  Alcotest.(check bool)
    "the seed-3 eager storm still fails (delete this test when fixed)" false
    (Crash_storm.ok o);
  Alcotest.(check bool)
    "the known mismatch signature is present" true
    (List.exists (fun f -> contains f "ob19: got 8 want 0")
       o.Crash_storm.failures);
  Alcotest.(check bool)
    "restart idempotence is also violated" true
    (List.exists (fun f -> contains f "restart not idempotent")
       o.Crash_storm.failures);
  (* the failure produced a forensic dump carrying the surviving update,
     its responsibility lineage, and the event trail *)
  let path = Filename.concat dir "FORENSIC_crash_eager_seed3_io39.json" in
  Alcotest.(check bool) "forensic dump written" true (Sys.file_exists path);
  let body = read_file path in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "dump contains %S" needle)
        true (contains body needle))
    [
      "\"engine\": \"eager\"";
      "127:upd(t13,+8)";
      "\"responsible\"";
      "\"transfers\": []";
      "\"trace\"";
      "\"metrics\"";
    ]

let suite =
  [
    Alcotest.test_case "eager seed-3: delegation surgery not crash-atomic"
      `Quick eager_seed3_delegation_surgery_not_atomic;
  ]
