(* On-demand ("instant") restart: analysis-only recovery that opens for
   traffic immediately, serves clean objects after a bounded page-slice
   redo, refuses loser-covered objects with the typed retryable error,
   drains the backlog in the background (the governor is the sweeper),
   and converges to exactly the state offline recovery would produce —
   checked by the recovery storm at every crash point, on all three
   engines and both backends. *)

open Ariesrh_types
open Ariesrh_core
open Ariesrh_workload
module Governor = Ariesrh_maintenance.Governor
module Metrics = Ariesrh_obs.Metrics

let oid = Oid.of_int

let scratch = ref 0

let fresh_dir tag =
  incr scratch;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ariesrh-od-%d-%s-%d" (Unix.getpid ()) tag !scratch)
  in
  Ariesrh_storage.Backend.remove_tree d;
  d

let mk ?(impl = Config.Rh) () =
  Driver.fresh_db ~impl ~audit:true ~recovery_mode:Config.On_demand
    ~n_objects:32 ()

(* One durable loser (uncommitted write made durable by a later commit's
   log force) plus one durable winner: the smallest history where the
   servability rule must both refuse and serve. *)
let crash_with_loser db =
  let a = Db.begin_txn db in
  Db.write db a (oid 0) 7;
  let b = Db.begin_txn db in
  Db.write db b (oid 1) 5;
  Db.commit db b;
  Db.crash db;
  ignore (Db.recover db)

(* --- the deterministic pin ------------------------------------------ *)

let refused_then_served impl () =
  let db = mk ~impl () in
  crash_with_loser db;
  Alcotest.(check bool) "open while recovering" true (Db.recovering db);
  Alcotest.(check bool) "backlog exposed" true (Db.recovery_backlog db > 0);
  let p = Db.begin_txn db in
  (match Db.read db p (oid 0) with
  | v -> Alcotest.failf "read of loser-held object served %d" v
  | exception Errors.Recovering { oid = o; backlog } ->
      Alcotest.(check bool) "refusal names the object" true (o = oid 0);
      Alcotest.(check bool) "refusal carries the backlog" true (backlog > 0));
  Alcotest.(check int) "clean object served degraded" 5 (Db.read db p (oid 1));
  Db.commit db p;
  Alcotest.(check bool) "degraded serves counted" true
    (Db.recovery_served_degraded db > 0);
  Db.await_recovery db;
  Alcotest.(check bool) "backlog drained" false (Db.recovering db);
  let q = Db.begin_txn db in
  Alcotest.(check int) "loser write undone after the sweep" 0
    (Db.read db q (oid 0));
  Alcotest.(check int) "winner write survived" 5 (Db.read db q (oid 1));
  Db.commit db q;
  Alcotest.(check (list string)) "audit clean" [] (Db.audit db);
  Db.close db

(* --- maintenance gates while recovering ----------------------------- *)

let gates_while_recovering () =
  let db = mk () in
  crash_with_loser db;
  Alcotest.(check bool) "recovering" true (Db.recovering db);
  Alcotest.(check int) "truncation refused (nothing dropped)" 0
    (Db.truncate_log db);
  Db.checkpoint db;
  Alcotest.(check bool) "checkpoint was a no-op, still recovering" true
    (Db.recovering db);
  (match Db.backup db with
  | _ -> Alcotest.fail "backup during on-demand recovery must refuse"
  | exception Errors.Recovery_incomplete { backlog } ->
      Alcotest.(check bool) "refusal carries the backlog" true (backlog > 0));
  let backlog_gauge () =
    match
      List.find_opt
        (fun s -> s.Metrics.name = "ariesrh_recovery_backlog")
        (Metrics.snapshot (Db.metrics db))
    with
    | Some { Metrics.value = Metrics.Int n; _ } -> n
    | _ -> Alcotest.fail "ariesrh_recovery_backlog gauge missing"
  in
  Alcotest.(check bool) "backlog gauge positive" true (backlog_gauge () > 0);
  Db.await_recovery db;
  Alcotest.(check bool) "drained" false (Db.recovering db);
  Alcotest.(check int) "backlog gauge back to zero" 0 (backlog_gauge ());
  Db.checkpoint db;
  Db.close db

(* --- the governor is the background sweeper ------------------------- *)

let governor_drains_backlog () =
  let db = mk () in
  crash_with_loser db;
  let gov =
    Governor.create
      ~config:{ Governor.default_config with Governor.tick_every = 1 }
      db
  in
  let guard = ref 0 in
  while Db.recovering db && !guard < 10_000 do
    incr guard;
    Governor.tick gov
  done;
  Alcotest.(check bool) "governor drained the backlog" false
    (Db.recovering db);
  Alcotest.(check bool) "sweeper steps counted" true
    ((Governor.stats gov).Governor.recovery_steps > 0);
  Alcotest.(check int) "loser write undone" 0 (Db.peek db (oid 0));
  Alcotest.(check (list string)) "audit clean" [] (Db.audit db);
  Db.close db

(* --- recovery storms: every crash point, every engine, both backends *)

let storm ?(file = false) ?(shards = 1) ?(crash_step = 1) ~n_steps impl () =
  let config =
    {
      Crash_storm.default_config with
      Crash_storm.crash_step;
      shards;
      backend_root = (if file then Some (fresh_dir "od-storm") else None);
    }
  in
  let spec = { Gen.default with Gen.n_steps; n_objects = 12 } in
  let outcome = Recovery_storm.run_script ~config ~impl spec in
  if not (Recovery_storm.ok outcome) then
    Alcotest.failf "recovery storm failed:@ %a" Recovery_storm.pp_outcome
      outcome;
  Alcotest.(check bool)
    (Printf.sprintf "offline twins checked (%d)"
       outcome.Recovery_storm.twin_checks)
    true
    (outcome.Recovery_storm.twin_checks > 0);
  Alcotest.(check bool)
    (Printf.sprintf "opened with backlog at least once (%d)"
       outcome.Recovery_storm.instant_opens)
    true
    (outcome.Recovery_storm.instant_opens > 0)

let storm_crashes_in_drain () =
  let config = { Crash_storm.default_config with Crash_storm.crash_step = 1 } in
  let spec = { Gen.default with Gen.n_steps = 36; n_objects = 12 } in
  let outcome = Recovery_storm.run_script ~config spec in
  if not (Recovery_storm.ok outcome) then
    Alcotest.failf "recovery storm failed:@ %a" Recovery_storm.pp_outcome
      outcome;
  Alcotest.(check bool)
    (Printf.sprintf "nested crashes hit the drain (%d)"
       outcome.Recovery_storm.nested_crashes)
    true
    (outcome.Recovery_storm.nested_crashes > 0);
  Alcotest.(check bool)
    (Printf.sprintf "probes refused or served (%d/%d)"
       outcome.Recovery_storm.refusals outcome.Recovery_storm.degraded_serves)
    true
    (outcome.Recovery_storm.refusals + outcome.Recovery_storm.degraded_serves
    > 0)

let impl_name = function
  | Config.Rh -> "rh"
  | Config.Eager -> "eager"
  | Config.Lazy -> "lazy"

let engines = [ Config.Rh; Config.Eager; Config.Lazy ]

let suite =
  List.map
    (fun impl ->
      Alcotest.test_case
        (Printf.sprintf "refused then served after sweep [%s]" (impl_name impl))
        `Quick (refused_then_served impl))
    engines
  @ [
      Alcotest.test_case "maintenance gates while recovering" `Quick
        gates_while_recovering;
      Alcotest.test_case "governor drains the backlog" `Quick
        governor_drains_backlog;
      Alcotest.test_case "storm exercises drain races" `Quick
        storm_crashes_in_drain;
    ]
  @ List.map
      (fun impl ->
        Alcotest.test_case
          (Printf.sprintf "recovery storm [%s, sim]" (impl_name impl))
          `Quick
          (storm ~n_steps:30 impl))
      engines
  @ List.map
      (fun impl ->
        Alcotest.test_case
          (Printf.sprintf "recovery storm [%s, file]" (impl_name impl))
          `Quick
          (storm ~file:true ~n_steps:22 impl))
      engines
  @ [
      Alcotest.test_case "recovery storm [rh, 4 shards]" `Quick
        (storm ~shards:4 ~crash_step:3 ~n_steps:28 Config.Rh);
    ]
