(* Scopes, Ob_Lists, and the transaction table — the paper's §3.4 data
   structures, including the subtle delegate-back behaviour. *)

open Ariesrh_types
open Ariesrh_txn

let xid = Xid.of_int
let oid = Oid.of_int
let lsn = Lsn.of_int

let scope_covers () =
  let s = Scope.make ~invoker:(xid 1) ~oid:(oid 5) ~first:(lsn 3) ~last:(lsn 9) in
  Alcotest.(check bool) "inside" true (Scope.covers s ~invoker:(xid 1) ~oid:(oid 5) (lsn 5));
  Alcotest.(check bool) "ends inclusive" true
    (Scope.covers s ~invoker:(xid 1) ~oid:(oid 5) (lsn 3)
    && Scope.covers s ~invoker:(xid 1) ~oid:(oid 5) (lsn 9));
  Alcotest.(check bool) "wrong invoker" false
    (Scope.covers s ~invoker:(xid 2) ~oid:(oid 5) (lsn 5));
  Alcotest.(check bool) "wrong object" false
    (Scope.covers s ~invoker:(xid 1) ~oid:(oid 6) (lsn 5));
  Alcotest.(check bool) "outside" false
    (Scope.covers s ~invoker:(xid 1) ~oid:(oid 5) (lsn 10))

let scope_trim () =
  let s = Scope.make ~invoker:(xid 1) ~oid:(oid 0) ~first:(lsn 3) ~last:(lsn 9) in
  Scope.trim_below s (lsn 7);
  Alcotest.(check int) "trimmed" 6 (Lsn.to_int s.Scope.last);
  Scope.trim_below s (lsn 8);
  Alcotest.(check int) "no-op when already lower" 6 (Lsn.to_int s.Scope.last);
  Scope.trim_below s (lsn 3);
  Alcotest.(check bool) "trimmed to empty" true (Scope.is_empty s)

let scope_overlap () =
  let s1 = Scope.make ~invoker:(xid 1) ~oid:(oid 0) ~first:(lsn 1) ~last:(lsn 5) in
  let s2 = Scope.make ~invoker:(xid 2) ~oid:(oid 1) ~first:(lsn 5) ~last:(lsn 8) in
  let s3 = Scope.make ~invoker:(xid 3) ~oid:(oid 2) ~first:(lsn 6) ~last:(lsn 9) in
  Alcotest.(check bool) "touching overlaps" true (Scope.overlaps s1 s2);
  Alcotest.(check bool) "disjoint" false (Scope.overlaps s1 s3);
  Alcotest.(check bool) "symmetric" true (Scope.overlaps s3 s2)

let ob_list_extends_open_scope () =
  let t = xid 1 and o = oid 4 in
  let ol = Ob_list.empty in
  let ol = Ob_list.note_update ol ~owner:t ~oid:o (lsn 5) in
  let ol = Ob_list.note_update ol ~owner:t ~oid:o (lsn 9) in
  match Ob_list.scopes_of ol o with
  | [ s ] ->
      Alcotest.(check int) "first" 5 (Lsn.to_int s.Scope.first);
      Alcotest.(check int) "last extended" 9 (Lsn.to_int s.Scope.last)
  | l -> Alcotest.failf "expected one scope, got %d" (List.length l)

let ob_list_new_scope_after_delegation () =
  let t = xid 1 and o = oid 4 in
  let ol = Ob_list.note_update Ob_list.empty ~owner:t ~oid:o (lsn 5) in
  let entry, ol = Option.get (Ob_list.take ol o) in
  Alcotest.(check int) "entry had the scope" 1 (List.length (Ob_list.entry_scopes entry));
  Alcotest.(check bool) "removed" false (Ob_list.mem ol o);
  let ol = Ob_list.note_update ol ~owner:t ~oid:o (lsn 9) in
  match Ob_list.scopes_of ol o with
  | [ s ] ->
      Alcotest.(check int) "fresh scope, not an extension" 9
        (Lsn.to_int s.Scope.first)
  | l -> Alcotest.failf "expected one scope, got %d" (List.length l)

(* the hazard: delegate out, receive back, update again — the update
   must NOT extend the old received scope across the delegation gap *)
let ob_list_delegate_back () =
  let t = xid 1 and t2 = xid 2 and o = oid 4 in
  let ol = Ob_list.note_update Ob_list.empty ~owner:t ~oid:o (lsn 5) in
  let entry, ol = Option.get (Ob_list.take ol o) in
  (* ... t2 holds it for a while, then delegates back *)
  let ol = Ob_list.receive ol ~oid:o ~from_:t2 (Ob_list.entry_scopes entry) in
  let ol = Ob_list.note_update ol ~owner:t ~oid:o (lsn 9) in
  match List.sort (fun a b -> Lsn.compare a.Scope.first b.Scope.first)
          (Ob_list.scopes_of ol o) with
  | [ s1; s2 ] ->
      Alcotest.(check int) "old scope intact" 5 (Lsn.to_int s1.Scope.last);
      Alcotest.(check int) "new scope opened at 9" 9 (Lsn.to_int s2.Scope.first)
  | l -> Alcotest.failf "expected two scopes, got %d" (List.length l)

let ob_list_receive_merges () =
  let t = xid 1 and o = oid 4 in
  let ol = Ob_list.note_update Ob_list.empty ~owner:t ~oid:o (lsn 8) in
  let incoming =
    [ Scope.make ~invoker:(xid 2) ~oid:o ~first:(lsn 2) ~last:(lsn 6) ]
  in
  let ol = Ob_list.receive ol ~oid:o ~from_:(xid 2) incoming in
  Alcotest.(check int) "scopes merged" 2 (List.length (Ob_list.scopes_of ol o));
  (match Ob_list.find ol o with
  | Some e -> (
      Alcotest.(check bool) "deleg recorded" true ((Ob_list.entry_deleg e) = Some (xid 2));
      match Ob_list.entry_open_scope e with
      | Some s -> Alcotest.(check int) "own open scope survives" 8 (Lsn.to_int s.Scope.first)
      | None -> Alcotest.fail "open scope lost")
  | None -> Alcotest.fail "entry missing");
  (* the receiver's next own update still extends its own scope *)
  let ol = Ob_list.note_update ol ~owner:t ~oid:o (lsn 12) in
  let own =
    List.find (fun s -> Xid.equal s.Scope.invoker t) (Ob_list.scopes_of ol o)
  in
  Alcotest.(check int) "extended to 12" 12 (Lsn.to_int own.Scope.last)

let ob_list_min_first () =
  let ol = Ob_list.note_update Ob_list.empty ~owner:(xid 1) ~oid:(oid 0) (lsn 7) in
  let ol = Ob_list.note_update ol ~owner:(xid 1) ~oid:(oid 1) (lsn 3) in
  Alcotest.(check (option int)) "min over scopes" (Some 3)
    (Option.map Lsn.to_int (Ob_list.min_first ol));
  Alcotest.(check (option int)) "empty" None
    (Option.map Lsn.to_int (Ob_list.min_first Ob_list.empty))

let ob_list_ckpt_roundtrip () =
  let t = xid 3 and o = oid 4 in
  let ol = Ob_list.note_update Ob_list.empty ~owner:t ~oid:o (lsn 5) in
  let ol =
    Ob_list.receive ol ~oid:(oid 7) ~from_:(xid 9)
      [ Scope.make ~invoker:(xid 9) ~oid:(oid 7) ~first:(lsn 1) ~last:(lsn 2) ]
  in
  let cks = Ob_list.to_ckpt ~owner:t ol in
  Alcotest.(check int) "two entries" 2 (List.length cks);
  let ol' = List.fold_left Ob_list.of_ckpt_entry Ob_list.empty cks in
  Alcotest.(check int) "objects restored" 2 (List.length (Ob_list.objects ol'));
  Alcotest.(check int) "scopes restored" 2 (List.length (Ob_list.all_scopes ol'));
  let restored_own = List.hd (Ob_list.scopes_of ol' o) in
  Alcotest.(check bool) "scope content" true
    (Scope.covers restored_own ~invoker:t ~oid:o (lsn 5))

let ob_list_drops_empty_scopes () =
  let t = xid 1 and o = oid 0 in
  let ol = Ob_list.note_update Ob_list.empty ~owner:t ~oid:o (lsn 5) in
  (match Ob_list.scopes_of ol o with
  | [ s ] -> Scope.trim_below s (lsn 5)
  | _ -> Alcotest.fail "scope missing");
  Alcotest.(check int) "trimmed-empty scopes filtered" 0
    (List.length (Ob_list.all_scopes ol))

let txn_table_basics () =
  let tt = Txn_table.create () in
  let i1 = Txn_table.add tt (xid 1) in
  Alcotest.(check bool) "fresh is active" true (i1.status = Txn_table.Active);
  Alcotest.check_raises "double add"
    (Invalid_argument "Txn_table.add: t1 already present") (fun () ->
      ignore (Txn_table.add tt (xid 1)));
  ignore (Txn_table.add tt (xid 7));
  Alcotest.(check int) "count" 2 (Txn_table.count tt);
  Alcotest.(check int) "max xid" 7 (Txn_table.max_xid tt);
  Txn_table.remove tt (xid 7);
  Alcotest.(check int) "max xid survives removal" 7 (Txn_table.max_xid tt);
  Alcotest.(check bool) "find" true (Txn_table.find tt (xid 1) <> None);
  Alcotest.(check bool) "find removed" true (Txn_table.find tt (xid 7) = None)

let txn_table_ckpt_roundtrip () =
  let tt = Txn_table.create () in
  let i1 = Txn_table.add tt (xid 1) in
  i1.status <- Txn_table.Committed;
  i1.last_lsn <- lsn 12;
  i1.undo_next <- lsn 10;
  i1.ob_list <- Ob_list.note_update i1.ob_list ~owner:(xid 1) ~oid:(oid 2) (lsn 4);
  let txns, obs = Txn_table.to_ckpt tt in
  Alcotest.(check int) "one txn" 1 (List.length txns);
  Alcotest.(check int) "one ob entry" 1 (List.length obs);
  let tt' = Txn_table.create () in
  let i1' = Txn_table.restore tt' (List.hd txns) in
  Alcotest.(check bool) "status restored" true (i1'.status = Txn_table.Committed);
  Alcotest.(check int) "last lsn restored" 12 (Lsn.to_int i1'.last_lsn)

let suite =
  [
    Alcotest.test_case "scope covers" `Quick scope_covers;
    Alcotest.test_case "scope trim" `Quick scope_trim;
    Alcotest.test_case "scope overlap" `Quick scope_overlap;
    Alcotest.test_case "ob_list extends open scope" `Quick ob_list_extends_open_scope;
    Alcotest.test_case "ob_list new scope after delegation" `Quick
      ob_list_new_scope_after_delegation;
    Alcotest.test_case "ob_list delegate back" `Quick ob_list_delegate_back;
    Alcotest.test_case "ob_list receive merges" `Quick ob_list_receive_merges;
    Alcotest.test_case "ob_list min_first" `Quick ob_list_min_first;
    Alcotest.test_case "ob_list checkpoint roundtrip" `Quick ob_list_ckpt_roundtrip;
    Alcotest.test_case "ob_list drops empty scopes" `Quick ob_list_drops_empty_scopes;
    Alcotest.test_case "txn table basics" `Quick txn_table_basics;
    Alcotest.test_case "txn table checkpoint roundtrip" `Quick txn_table_ckpt_roundtrip;
  ]
