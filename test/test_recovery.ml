(* Recovery internals on hand-crafted logs: the cluster sweep (Fig. 8),
   its naive ablation, op inversion, and the eager surgery's chain
   integrity. *)

open Ariesrh_types
open Ariesrh_wal
open Ariesrh_txn
open Ariesrh_recovery

let xid = Xid.of_int
let oid = Oid.of_int
let lsn = Lsn.of_int

(* a raw environment over one 16-slot page *)
let raw_env () =
  let log = Log_store.create () in
  let disk = Ariesrh_storage.Disk.create ~pages:1 ~slots_per_page:16 () in
  let pool =
    Ariesrh_storage.Buffer_pool.create ~capacity:2 ~disk
      ~wal_flush:(fun _ -> ())
      ()
  in
  Env.make ~log ~pool
    ~place:(fun o -> (Page_id.of_int 0, Oid.to_int o))
    ()

(* append an update record and apply it, as normal processing would *)
let upd env ~prev x o d =
  let u = { Record.oid = oid o; page = Page_id.of_int 0; op = Record.Add d } in
  let l = Log_store.append env.Env.log (Record.mk x ~prev (Record.Update u)) in
  Apply.force env l u;
  l

let filler env ~prev n =
  let p = ref prev in
  for _ = 1 to n do
    p := upd env ~prev:!p (xid 99) 15 1
  done;
  !p

(* a sweep driver that records the undo order and writes real CLRs *)
let run_sweep ?floor ~naive env scopes =
  let order = ref [] in
  let heads = Hashtbl.create 8 in
  let on_undo ~owner ~invoker ~undone ~undo_next upd =
    order := Lsn.to_int undone :: !order;
    let prev =
      Option.value ~default:Lsn.nil (Hashtbl.find_opt heads (Xid.to_int owner))
    in
    let l =
      Log_store.append env.Env.log
        (Record.mk owner ~prev (Record.Clr { upd; undone; invoker; undo_next }))
    in
    Hashtbl.replace heads (Xid.to_int owner) l;
    l
  in
  let stats =
    if naive then Scope_sweep.sweep_naive env ~scopes ~on_undo
    else Scope_sweep.sweep ?floor env ~scopes ~on_undo
  in
  (stats, List.rev !order)

let value env o =
  Ariesrh_storage.Buffer_pool.read_object env.Env.pool (Page_id.of_int 0)
    ~slot:o

let sweep_undoes_only_matching () =
  let env = raw_env () in
  (* t1 adds to ob0 at 1 and 3; t2 adds to ob0 at 2 (commuting) *)
  let a = upd env ~prev:Lsn.nil (xid 1) 0 10 in
  let _b = upd env ~prev:Lsn.nil (xid 2) 0 100 in
  let c = upd env ~prev:a (xid 1) 0 1 in
  Alcotest.(check int) "all applied" 111 (value env 0);
  (* only t1's scope loses *)
  let s = Scope.make ~invoker:(xid 1) ~oid:(oid 0) ~first:a ~last:c in
  let stats, order = run_sweep ~naive:false env [ (xid 1, s) ] in
  Alcotest.(check int) "two undos" 2 stats.Scope_sweep.undone;
  Alcotest.(check (list int)) "decreasing order" [ 3; 1 ] order;
  Alcotest.(check int) "t2's commuting add survives" 100 (value env 0)

let sweep_object_awareness () =
  let env = raw_env () in
  (* the erratum scenario: t1's scope on ob0 spans its update to ob1,
     which belongs to a winner *)
  let a = upd env ~prev:Lsn.nil (xid 1) 0 10 in
  let b = upd env ~prev:a (xid 1) 1 100 in
  let c = upd env ~prev:b (xid 1) 0 1 in
  let s = Scope.make ~invoker:(xid 1) ~oid:(oid 0) ~first:a ~last:c in
  let stats, _ = run_sweep ~naive:false env [ (xid 9, s) ] in
  Alcotest.(check int) "only the two ob0 updates undone" 2
    stats.Scope_sweep.undone;
  Alcotest.(check int) "ob1 untouched" 100 (value env 1);
  Alcotest.(check int) "ob0 restored" 0 (value env 0)

let sweep_clusters_and_skips () =
  let env = raw_env () in
  let a1 = upd env ~prev:Lsn.nil (xid 1) 0 1 in
  let a2 = upd env ~prev:a1 (xid 1) 0 1 in
  let p = filler env ~prev:Lsn.nil 50 in
  let b1 = upd env ~prev:Lsn.nil (xid 2) 1 1 in
  let b2 = upd env ~prev:b1 (xid 2) 1 1 in
  ignore p;
  let s1 = Scope.make ~invoker:(xid 1) ~oid:(oid 0) ~first:a1 ~last:a2 in
  let s2 = Scope.make ~invoker:(xid 2) ~oid:(oid 1) ~first:b1 ~last:b2 in
  let stats, order =
    run_sweep ~naive:false env [ (xid 1, s1); (xid 2, s2) ]
  in
  Alcotest.(check int) "two clusters" 2 stats.Scope_sweep.clusters;
  Alcotest.(check int) "four records examined" 4 stats.Scope_sweep.examined;
  Alcotest.(check int) "the filler was skipped" 50 stats.Scope_sweep.skipped;
  Alcotest.(check (list int)) "global decreasing order"
    (List.map Lsn.to_int [ b2; b1; a2; a1 ])
    order

let sweep_overlapping_scopes_one_cluster () =
  let env = raw_env () in
  let a1 = upd env ~prev:Lsn.nil (xid 1) 0 1 in
  let b1 = upd env ~prev:Lsn.nil (xid 2) 1 1 in
  let a2 = upd env ~prev:a1 (xid 1) 0 1 in
  let b2 = upd env ~prev:b1 (xid 2) 1 1 in
  let s1 = Scope.make ~invoker:(xid 1) ~oid:(oid 0) ~first:a1 ~last:a2 in
  let s2 = Scope.make ~invoker:(xid 2) ~oid:(oid 1) ~first:b1 ~last:b2 in
  let stats, _ = run_sweep ~naive:false env [ (xid 1, s1); (xid 2, s2) ] in
  Alcotest.(check int) "one merged cluster" 1 stats.Scope_sweep.clusters;
  Alcotest.(check int) "all four undone" 4 stats.Scope_sweep.undone;
  Alcotest.(check int) "nothing skipped inside" 0 stats.Scope_sweep.skipped

let sweep_trims_scopes () =
  let env = raw_env () in
  let a1 = upd env ~prev:Lsn.nil (xid 1) 0 1 in
  let a2 = upd env ~prev:a1 (xid 1) 0 1 in
  let s = Scope.make ~invoker:(xid 1) ~oid:(oid 0) ~first:a1 ~last:a2 in
  ignore (run_sweep ~naive:false env [ (xid 1, s) ]);
  Alcotest.(check bool) "scope trimmed to empty" true (Scope.is_empty s)

let sweep_floor_stops () =
  let env = raw_env () in
  let a1 = upd env ~prev:Lsn.nil (xid 1) 0 1 in
  let a2 = upd env ~prev:a1 (xid 1) 0 10 in
  let a3 = upd env ~prev:a2 (xid 1) 0 100 in
  let s = Scope.make ~invoker:(xid 1) ~oid:(oid 0) ~first:a1 ~last:a3 in
  let stats, order = run_sweep ~floor:a1 ~naive:false env [ (xid 1, s) ] in
  Alcotest.(check int) "two undone above the floor" 2 stats.Scope_sweep.undone;
  Alcotest.(check (list int)) "only the suffix"
    (List.map Lsn.to_int [ a3; a2 ])
    order;
  Alcotest.(check int) "value reflects partial undo" 1 (value env 0);
  Alcotest.(check bool) "scope keeps the untouched prefix" true
    (Scope.covers s ~invoker:(xid 1) ~oid:(oid 0) a1)

let sweep_ignores_empty_scopes () =
  let env = raw_env () in
  let a1 = upd env ~prev:Lsn.nil (xid 1) 0 1 in
  let s = Scope.make ~invoker:(xid 1) ~oid:(oid 0) ~first:a1 ~last:a1 in
  Scope.trim_below s a1;
  let stats, _ = run_sweep ~naive:false env [ (xid 1, s) ] in
  Alcotest.(check int) "nothing to do" 0 stats.Scope_sweep.examined

let naive_sweep_agrees =
  QCheck.Test.make ~count:60 ~name:"naive and cluster sweeps undo the same"
    (QCheck.make ~print:Int64.to_string
       QCheck.Gen.(map Int64.of_int (int_bound 100_000)))
    (fun seed ->
      let rng = Ariesrh_util.Prng.create seed in
      (* random little battlefield: 3 losers, interleaved updates and
         filler *)
      let build () =
        let env = raw_env () in
        let prevs = Array.make 4 Lsn.nil in
        let scopes = ref [] in
        let rng = Ariesrh_util.Prng.copy rng in
        for t = 1 to 3 do
          let first = ref Lsn.nil in
          let last = ref Lsn.nil in
          let n = 1 + Ariesrh_util.Prng.int rng 4 in
          for _ = 1 to n do
            prevs.(0) <- filler env ~prev:prevs.(0) (Ariesrh_util.Prng.int rng 4);
            let l = upd env ~prev:prevs.(t) (xid t) (t - 1) 1 in
            prevs.(t) <- l;
            if Lsn.is_nil !first then first := l;
            last := l
          done;
          scopes :=
            (xid t, Scope.make ~invoker:(xid t) ~oid:(oid (t - 1)) ~first:!first ~last:!last)
            :: !scopes
        done;
        (env, !scopes)
      in
      let env1, scopes1 = build () in
      let s1, o1 = run_sweep ~naive:false env1 scopes1 in
      let env2, scopes2 = build () in
      let s2, o2 = run_sweep ~naive:true env2 scopes2 in
      s1.Scope_sweep.undone = s2.Scope_sweep.undone
      && o1 = o2
      && List.init 3 (fun i -> value env1 i) = List.init 3 (fun i -> value env2 i))

let inverse_involution () =
  let ops =
    [ Record.Set { before = 3; after = 9 }; Record.Add 5; Record.Add (-2) ]
  in
  List.iter
    (fun op ->
      Alcotest.(check bool) "inverse . inverse = id" true
        (Apply.inverse (Apply.inverse op) = op))
    ops

let redo_is_conditional () =
  let env = raw_env () in
  let u = { Record.oid = oid 0; page = Page_id.of_int 0; op = Record.Add 5 } in
  Alcotest.(check bool) "applies when newer" true (Apply.redo env (lsn 10) u);
  Alcotest.(check bool) "skips when page is newer" false
    (Apply.redo env (lsn 10) u);
  Alcotest.(check bool) "skips older" false (Apply.redo env (lsn 9) u);
  Alcotest.(check int) "applied exactly once" 5 (value env 0)

(* eager surgery: after delegation, the two chains partition the records
   and remain strictly decreasing *)
let eager_chain_integrity () =
  let env = raw_env () in
  let tt = Txn_table.create () in
  let t1 = Txn_table.add tt (xid 1) in
  let t2 = Txn_table.add tt (xid 2) in
  let l1 = upd env ~prev:t1.last_lsn (xid 1) 0 1 in
  t1.last_lsn <- l1;
  let l2 = upd env ~prev:t2.last_lsn (xid 2) 2 1 in
  t2.last_lsn <- l2;
  let l3 = upd env ~prev:t1.last_lsn (xid 1) 1 1 in
  t1.last_lsn <- l3;
  let l4 = upd env ~prev:t1.last_lsn (xid 1) 0 1 in
  t1.last_lsn <- l4;
  Log_store.flush env.Env.log ~upto:(Log_store.head env.Env.log);
  let rewrites =
    Rewrite.eager_delegate env ~tor_info:t1 ~tee_info:t2 (oid 0)
  in
  Alcotest.(check bool) "some records were patched" true (rewrites > 0);
  let chain info =
    let rec go l acc =
      if Lsn.is_nil l then List.rev acc
      else
        go (Record.prev_for (Log_store.read env.Env.log l) info.Txn_table.xid)
          (Lsn.to_int l :: acc)
    in
    go info.Txn_table.last_lsn []
  in
  Alcotest.(check (list int)) "t1 keeps only its ob1 update"
    [ Lsn.to_int l3 ] (chain t1);
  Alcotest.(check (list int)) "t2 gained ob0's records in LSN order"
    (List.sort compare [ Lsn.to_int l1; Lsn.to_int l2; Lsn.to_int l4 ])
    (List.sort compare (chain t2));
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a > b && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "t2's chain is strictly decreasing" true
    (decreasing (chain t2))

(* The once-quarantined eager seed-3 repro (test_known_bugs.ml kept its
   forensic fixture): scripted storm, eager engine, crash armed at the
   39th I/O — the exact crash point that used to leave a re-attributed
   update durable without its responsibility transfer. The rewrite
   system transaction resolves it now; the storm (which also checks
   restart idempotence and runs the self-audit after every recovery)
   must pass. *)
let eager_seed3_surgery_now_atomic () =
  let config =
    { Ariesrh_workload.Crash_storm.default_config with
      seed = 3L;
      crash_step = 39;
      forensic_dir = None }
  in
  let spec =
    { Ariesrh_workload.Gen.default with
      n_objects = 32;
      n_steps = 160;
      p_delegate = 0.2 }
  in
  let o =
    Ariesrh_workload.Crash_storm.run_script ~config
      ~impl:Ariesrh_core.Config.Eager spec
  in
  if not (Ariesrh_workload.Crash_storm.ok o) then
    Alcotest.failf "seed-3 eager storm failed: %a"
      Ariesrh_workload.Crash_storm.pp_outcome o

(* Crash at EVERY I/O point of a delegation-heavy script — including
   each I/O inside the surgery window (intent force, every in-place
   rewrite, the closing force) — and require each restart to resolve to
   exactly the pre- or post-surgery log: the storm's oracle and
   idempotence checks fail otherwise, and the self-audit (on by
   default) asserts the chain-closure invariants after every one of the
   storm's restarts. Exercises both engines that rewrite history in
   place: eager (surgery at delegation time) and lazy (batched splice
   at restart). *)
let surgery_window_crashes_idempotent =
  QCheck.Test.make ~count:6
    ~name:"crash at every I/O of the surgery window: restart idempotent"
    (QCheck.make
       ~print:(fun (seed, impl) ->
         Printf.sprintf "seed=%Ld engine=%s" seed
           (match impl with
           | Ariesrh_core.Config.Eager -> "eager"
           | Ariesrh_core.Config.Lazy -> "lazy"
           | Ariesrh_core.Config.Rh -> "rh"))
       QCheck.Gen.(
         pair
           (map Int64.of_int (int_bound 1000))
           (oneofl [ Ariesrh_core.Config.Eager; Ariesrh_core.Config.Lazy ])))
    (fun (seed, impl) ->
      let config =
        { Ariesrh_workload.Crash_storm.default_config with
          seed;
          crash_step = 1;
          forensic_dir = None }
      in
      let spec =
        { Ariesrh_workload.Gen.default with
          n_objects = 12;
          n_steps = 60;
          p_delegate = 0.35 }
      in
      let o = Ariesrh_workload.Crash_storm.run_script ~config ~impl spec in
      if not (Ariesrh_workload.Crash_storm.ok o) then
        QCheck.Test.fail_reportf "storm failed: %a"
          Ariesrh_workload.Crash_storm.pp_outcome o;
      true)

let attribute_only_literal () =
  let env = raw_env () in
  let l1 = upd env ~prev:Lsn.nil (xid 1) 0 1 in
  let l2 = upd env ~prev:l1 (xid 1) 1 1 in
  let l3 = upd env ~prev:l2 (xid 1) 0 1 in
  Log_store.flush env.Env.log ~upto:(Log_store.head env.Env.log);
  let n =
    Rewrite.attribute_only env ~tor:(xid 1) ~tee:(xid 2) (oid 0) ~from:l3
  in
  Alcotest.(check int) "both ob0 records re-attributed" 2 n;
  let w l = Xid.to_int (Record.writer_exn (Log_store.read env.Env.log l)) in
  Alcotest.(check int) "first rewritten" 2 (w l1);
  Alcotest.(check int) "ob1 record untouched" 1 (w l2);
  Alcotest.(check int) "third rewritten" 2 (w l3)

let suite =
  [
    Alcotest.test_case "sweep undoes only matching" `Quick
      sweep_undoes_only_matching;
    Alcotest.test_case "sweep is object-aware (erratum)" `Quick
      sweep_object_awareness;
    Alcotest.test_case "sweep clusters and skips" `Quick sweep_clusters_and_skips;
    Alcotest.test_case "sweep merges overlapping scopes" `Quick
      sweep_overlapping_scopes_one_cluster;
    Alcotest.test_case "sweep trims scopes" `Quick sweep_trims_scopes;
    Alcotest.test_case "sweep floor (savepoint)" `Quick sweep_floor_stops;
    Alcotest.test_case "sweep ignores empty scopes" `Quick
      sweep_ignores_empty_scopes;
    QCheck_alcotest.to_alcotest naive_sweep_agrees;
    Alcotest.test_case "op inverse involution" `Quick inverse_involution;
    Alcotest.test_case "redo is page-lsn conditional" `Quick redo_is_conditional;
    Alcotest.test_case "eager surgery chain integrity" `Quick
      eager_chain_integrity;
    Alcotest.test_case "eager seed-3: surgery now crash-atomic" `Quick
      eager_seed3_surgery_now_atomic;
    QCheck_alcotest.to_alcotest surgery_window_crashes_idempotent;
    Alcotest.test_case "attribute-only literal Fig. 1" `Quick
      attribute_only_literal;
  ]
