(* Log-space governance: bounded WAL admission, reservation so rollback
   and restart never die of [Log_full], the watermark governor with
   delegation-aware backpressure and victimization, the capacity-squeeze
   fault, E8 reclamation down to the pinned scope, and pressure-storm
   smoke across all three engines. *)

open Ariesrh_types
open Ariesrh_wal
open Ariesrh_core
open Ariesrh_workload
module Fault = Ariesrh_fault.Fault
module Governor = Ariesrh_maintenance.Governor

let xid = Xid.of_int
let oid = Oid.of_int
let lsn = Lsn.of_int

let mk ?fault ?(impl = Config.Rh) ?capacity_bytes ?capacity_records () =
  Db.create ?fault
    (Config.make ~n_objects:64 ~objects_per_page:4 ~buffer_capacity:8 ~impl
       ~locking:true ?log_capacity_bytes:capacity_bytes
       ?log_capacity_records:capacity_records ())

let mk_update i =
  Record.mk (xid 1) ~prev:Lsn.nil
    (Record.Update
       { oid = oid i; page = Page_id.of_int 0; op = Record.Add 1 })

let update_size = String.length (Record.encode (mk_update 1))

(* --- log store admission ------------------------------------------- *)

let byte_capacity_enforced () =
  let sz = update_size in
  let log = Log_store.create ~capacity_bytes:(3 * sz) () in
  for i = 1 to 3 do
    ignore (Log_store.append log (mk_update i))
  done;
  (match Log_store.append log (mk_update 4) with
  | exception
      Log_store.Log_full
        { dimension = Log_store.Bytes; need; used; reserved; capacity } ->
      Alcotest.(check int) "need" sz need;
      Alcotest.(check int) "used" (3 * sz) used;
      Alcotest.(check int) "reserved" 0 reserved;
      Alcotest.(check int) "capacity" (3 * sz) capacity
  | _ -> Alcotest.fail "4th append should not fit");
  (* bypass path still admits: recovery must never be refused *)
  ignore (Log_store.append_reserved log (mk_update 4));
  Alcotest.(check int) "used all 4" (4 * sz) (Log_store.used_bytes log);
  Alcotest.(check int) "one admission reject" 1
    (Log_store.stats log).Log_stats.admission_rejects

let record_capacity_enforced () =
  let log = Log_store.create ~capacity_records:2 () in
  ignore (Log_store.append log (mk_update 1));
  ignore (Log_store.append log (mk_update 2));
  match Log_store.append log (mk_update 3) with
  | exception Log_store.Log_full { dimension = Log_store.Records; _ } -> ()
  | _ -> Alcotest.fail "3rd record should not fit"

let reservation_blocks_admission () =
  let sz = update_size in
  let log = Log_store.create ~capacity_bytes:(4 * sz) () in
  Log_store.reserve log ~bytes:(2 * sz) ~records:0;
  ignore (Log_store.append log (mk_update 1));
  ignore (Log_store.append log (mk_update 2));
  (match Log_store.append log (mk_update 3) with
  | exception Log_store.Log_full { reserved; _ } ->
      Alcotest.(check int) "pool visible in the refusal" (2 * sz) reserved
  | _ -> Alcotest.fail "reserved space must not be admittable");
  (* releasing the obligation opens the space back up *)
  Log_store.unreserve log ~bytes:sz ~records:0;
  ignore (Log_store.append log (mk_update 3));
  Alcotest.(check int) "reservations counted" 1
    (Log_store.stats log).Log_stats.reservations

let pressure_reads_back () =
  let sz = update_size in
  let log = Log_store.create ~capacity_bytes:(4 * sz) () in
  Alcotest.(check (float 0.001)) "empty" 0.0 (Log_store.pressure log);
  ignore (Log_store.append log (mk_update 1));
  ignore (Log_store.append log (mk_update 2));
  Alcotest.(check (float 0.001)) "half" 0.5 (Log_store.pressure log);
  let unbounded = Log_store.create () in
  ignore (Log_store.append unbounded (mk_update 1));
  Alcotest.(check (float 0.001)) "unbounded is pressureless" 0.0
    (Log_store.pressure unbounded)

(* --- rollback and restart never die of Log_full -------------------- *)

let abort_survives_full_log () =
  let db = mk ~capacity_bytes:2048 () in
  let t = Db.begin_txn db in
  let i = ref 0 in
  (try
     while true do
       Db.add db t (oid (!i mod 64)) 1;
       incr i
     done
   with Log_store.Log_full _ -> ());
  Alcotest.(check bool) "filled the log" true (!i > 0);
  Db.abort db t;
  Alcotest.(check bool) "rolled back" false (Db.is_active db t);
  for o = 0 to 63 do
    Alcotest.(check int) "undone" 0 (Db.peek db (oid o))
  done

let begin_reserves_rollback_space () =
  let db = mk ~capacity_records:3 () in
  let t1 = Db.begin_txn db in
  (match Db.begin_txn db with
  | exception Log_store.Log_full { dimension = Log_store.Records; _ } -> ()
  | _ ->
      Alcotest.fail
        "a second begin must not fit: the first holds the whole budget");
  (* abort+end ride on the reservation made at begin *)
  Db.abort db t1;
  Alcotest.(check int) "begin/abort/end retained" 3
    (Log_store.used_records (Db.log_store db))

let restart_survives_full_log () =
  let db = mk ~capacity_bytes:1600 () in
  let t1 = Db.begin_txn db in
  Db.add db t1 (oid 1) 5;
  Db.commit db t1;
  let t2 = Db.begin_txn db in
  (try
     while true do
       Db.add db t2 (oid 2) 1
     done
   with Log_store.Log_full _ -> ());
  Db.crash db;
  ignore (Db.recover db);
  Alcotest.(check int) "winner survived" 5 (Db.peek db (oid 1));
  Alcotest.(check int) "loser undone" 0 (Db.peek db (oid 2));
  Alcotest.(check int) "pool reset by the crash" 0
    (Log_store.reserved_bytes (Db.log_store db))

(* --- typed backpressure -------------------------------------------- *)

let backpressure_typed_errors () =
  let db = mk () in
  let t1 = Db.begin_txn db in
  let t2 = Db.begin_txn db in
  Db.add db t1 (oid 3) 1;
  let op_lsn = Db.last_lsn_of db t1 in
  Db.set_backpressure db ~begins:true ~delegations:true;
  (match Db.begin_txn db with
  | exception Errors.Overloaded { reason = Errors.Begin_refused; _ } -> ()
  | _ -> Alcotest.fail "begin should be refused");
  (match Db.delegate db ~from_:t1 ~to_:t2 (oid 3) with
  | exception
      Errors.Overloaded { reason = Errors.Delegation_refused; xid = Some x }
    ->
      Alcotest.(check bool) "names the delegator" true (Xid.equal x t1)
  | _ -> Alcotest.fail "delegation should be refused");
  (match Db.delegate_update db ~from_:t1 ~to_:t2 (oid 3) op_lsn with
  | exception Errors.Overloaded { reason = Errors.Delegation_refused; _ } ->
      ()
  | _ -> Alcotest.fail "operation delegation should be refused");
  (* hysteresis: lifting the flags restores service, nothing was lost *)
  Db.set_backpressure db ~begins:false ~delegations:false;
  Db.delegate db ~from_:t1 ~to_:t2 (oid 3);
  let t3 = Db.begin_txn db in
  Db.commit db t3;
  Db.commit db t2;
  Db.commit db t1;
  Alcotest.(check int) "delegated work committed" 1 (Db.peek db (oid 3))

let pp_exn_covers_pressure_errors () =
  let printed e = Format.asprintf "%a" Errors.pp_exn e in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "overloaded (begin)" true
    (contains
       (printed
          (Errors.Overloaded { xid = Some (xid 3); reason = Errors.Begin_refused }))
       "overloaded");
  Alcotest.(check bool) "overloaded (delegation)" true
    (contains
       (printed
          (Errors.Overloaded { xid = None; reason = Errors.Delegation_refused }))
       "delegations refused");
  Alcotest.(check bool) "truncated past backup" true
    (contains
       (printed
          (Errors.Log_truncated_past_backup
             { backup = lsn 5; retained = lsn 9 }))
       "truncated past the backup");
  Alcotest.(check bool) "unsupported by engine" true
    (contains
       (printed (Errors.Unsupported_by_engine { op = "x"; impl = "eager" }))
       "not supported by the eager engine");
  Alcotest.(check bool) "log full" true
    (contains
       (printed
          (Log_store.Log_full
             {
               dimension = Log_store.Bytes;
               need = 1;
               used = 2;
               reserved = 3;
               capacity = 4;
             }))
       "log full")

(* --- the governor --------------------------------------------------- *)

let governor_reclaims_below_soft () =
  let db = mk ~capacity_bytes:4096 () in
  let gov =
    Governor.create
      ~config:{ Governor.default_config with tick_every = 1; min_ckpt_gap = 4 }
      db
  in
  for i = 1 to 120 do
    let t = Db.begin_txn db in
    Db.add db t (oid (i mod 64)) 1;
    Db.commit db t;
    Governor.tick gov
  done;
  let gs = Governor.stats gov in
  Alcotest.(check bool) "checkpointed" true (gs.Governor.checkpoints > 0);
  Alcotest.(check bool) "truncated" true (gs.Governor.records_truncated > 0);
  Alcotest.(check bool) "pressure held below hard" true
    (Db.log_pressure db < Governor.default_config.Governor.hard);
  Alcotest.(check int) "no backpressure engaged" 0 (Governor.level gov)

let governor_victimizes_oldest_pinner () =
  let db = mk ~capacity_bytes:4096 () in
  let gov =
    Governor.create
      ~config:
        {
          Governor.default_config with
          tick_every = 1;
          min_ckpt_gap = 1;
          policies = [ Governor.Victimize_oldest ];
        }
      db
  in
  let collector = Db.begin_txn db in
  let i = ref 0 in
  while Db.is_active db collector && !i < 200 do
    incr i;
    (try
       let w = Db.begin_txn db in
       (try
          Db.add db w (oid ((!i mod 60) + 1)) 1;
          Db.delegate db ~from_:w ~to_:collector (oid ((!i mod 60) + 1))
        with Log_store.Log_full _ -> ());
       Db.commit db w
     with Log_store.Log_full _ -> ());
    Governor.force_tick gov
  done;
  Alcotest.(check bool) "collector was victimized" false
    (Db.is_active db collector);
  let gs = Governor.stats gov in
  Alcotest.(check bool) "victim counted" true (gs.Governor.victims >= 1);
  Alcotest.(check bool) "victim list names the collector" true
    (List.exists (Xid.equal collector) (Governor.victims gov));
  Alcotest.(check bool) "hard trips recorded" true (gs.Governor.hard_trips > 0);
  Alcotest.(check bool) "victimization relieved the pressure" true
    (Db.log_pressure db < 1.0);
  (* the victim's rollback undid its delegated-in increments *)
  ignore (Db.truncate_log db)

let governor_escalation_ladder () =
  let db = mk ~capacity_bytes:2600 () in
  (* a long-lived delegatee pins the horizon so reclamation cannot help *)
  let collector = Db.begin_txn db in
  let probe = Db.begin_txn db in
  Db.add db probe (oid 63) 1;
  (try
     let i = ref 0 in
     while Db.log_pressure db < 0.9 do
       incr i;
       let w = Db.begin_txn db in
       Db.add db w (oid ((!i mod 60) + 1)) 1;
       Db.delegate db ~from_:w ~to_:collector (oid ((!i mod 60) + 1));
       Db.commit db w
     done
   with Log_store.Log_full _ -> ());
  let gov =
    Governor.create
      ~config:
        {
          Governor.default_config with
          tick_every = 1;
          min_ckpt_gap = 1;
          policies = [ Governor.Refuse_delegations; Governor.Refuse_begins ];
        }
      db
  in
  Governor.force_tick gov;
  Alcotest.(check int) "first trip refuses delegations" 1 (Governor.level gov);
  (match Db.delegate db ~from_:probe ~to_:collector (oid 63) with
  | exception Errors.Overloaded { reason = Errors.Delegation_refused; _ } -> ()
  | exception e ->
      Alcotest.failf "expected the typed overload, got %a" Errors.pp_exn e
  | () -> Alcotest.fail "delegation should be refused at level 1");
  Governor.force_tick gov;
  Alcotest.(check int) "second trip refuses begins" 2 (Governor.level gov);
  (match Db.begin_txn db with
  | exception Errors.Overloaded { reason = Errors.Begin_refused; _ } -> ()
  | _ -> Alcotest.fail "begin should be refused at level 2");
  (* the ladder is capped at the configured policies *)
  Governor.force_tick gov;
  Alcotest.(check int) "capped" 2 (Governor.level gov);
  (* resolving the pinners lets the governor reclaim and de-escalate *)
  Db.commit db probe;
  Db.commit db collector;
  Governor.force_tick gov;
  Governor.force_tick gov;
  Alcotest.(check int) "de-escalated" 0 (Governor.level gov);
  let t = Db.begin_txn db in
  Db.commit db t

let horizon_pinners_oldest_first () =
  let db = mk () in
  let t1 = Db.begin_txn db in
  let t2 = Db.begin_txn db in
  let t3 = Db.begin_txn db in
  Db.add db t2 (oid 2) 1;
  (match Db.horizon_pinners db with
  | (x, _) :: _ ->
      Alcotest.(check bool) "oldest begin pins first" true (Xid.equal x t1)
  | [] -> Alcotest.fail "three active transactions must pin");
  Alcotest.(check int) "all three pin" 3 (List.length (Db.horizon_pinners db));
  (* a delegated-in scope outranks a recent begin record *)
  Db.delegate db ~from_:t2 ~to_:t3 (oid 2);
  Db.commit db t1;
  Db.commit db t2;
  match Db.horizon_pinners db with
  | [ (x, pin) ] ->
      Alcotest.(check bool) "delegatee pins" true (Xid.equal x t3);
      Alcotest.(check bool) "from the delegated scope, not its begin" true
        Lsn.(pin < Db.last_lsn_of db t3)
  | l -> Alcotest.failf "expected exactly the delegatee, got %d" (List.length l)

(* --- E8: truncation stops exactly at the pinned scope --------------- *)

let truncation_reclaims_to_pinned_scope () =
  let db = mk () in
  let collector = ref (Db.begin_txn db) in
  let w1 = Db.begin_txn db in
  Db.add db w1 (oid 1) 1;
  let first_update = Db.last_lsn_of db w1 in
  Db.delegate db ~from_:w1 ~to_:!collector (oid 1);
  Db.commit db w1;
  for i = 2 to 40 do
    let w = Db.begin_txn db in
    Db.add db w (oid i) 1;
    Db.delegate db ~from_:w ~to_:!collector (oid i);
    Db.commit db w
  done;
  (* rotate the collector (E8): the fresh one's begin record is recent,
     so only the delegated-in scopes can pin *)
  let fresh = Db.begin_txn db in
  Db.delegate_all db ~from_:!collector ~to_:fresh;
  Db.commit db !collector;
  collector := fresh;
  Db.shutdown db;
  Db.checkpoint db;
  Alcotest.(check int) "horizon = oldest delegated update"
    (Lsn.to_int first_update)
    (Lsn.to_int (Db.truncation_horizon db));
  let reclaimed = Db.truncate_log db in
  Alcotest.(check int) "reclaimed everything below the scope"
    (Lsn.to_int first_update - Lsn.to_int Lsn.first)
    reclaimed;
  Alcotest.(check int) "retained exactly from the scope"
    (Lsn.to_int first_update)
    (Lsn.to_int (Log_store.truncated_below (Db.log_store db)));
  (* resolving the delegatee releases the pin; the rest reclaims *)
  Db.commit db !collector;
  Db.shutdown db;
  Db.checkpoint db;
  Alcotest.(check bool) "rest reclaimed" true (Db.truncate_log db > 0);
  Alcotest.(check int) "horizon caught up to the master record"
    (Lsn.to_int (Log_store.master (Db.log_store db)))
    (Lsn.to_int (Db.truncation_horizon db));
  (* the whole dance kept the data intact *)
  for i = 1 to 40 do
    Alcotest.(check int) "value" 1 (Db.peek db (oid i))
  done

let truncated_log_recovers () =
  (* truncation composes with crash recovery: restart over the retained
     suffix alone reproduces the state *)
  let db = mk () in
  let collector = Db.begin_txn db in
  for i = 1 to 20 do
    let w = Db.begin_txn db in
    Db.add db w (oid i) 1;
    Db.delegate db ~from_:w ~to_:collector (oid i);
    Db.commit db w
  done;
  Db.shutdown db;
  Db.checkpoint db;
  ignore (Db.truncate_log db);
  Db.crash db;
  ignore (Db.recover db);
  (* the collector died with the crash; its delegated-in increments
     were rolled back by restart *)
  for i = 1 to 20 do
    Alcotest.(check int) "undone with the delegatee" 0 (Db.peek db (oid i))
  done;
  match Db.validate db with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariants: %s" e

(* --- truncation x media recovery ----------------------------------- *)

let media_restore_refused_past_truncation () =
  let db = mk () in
  let t = Db.begin_txn db in
  Db.add db t (oid 1) 1;
  Db.commit db t;
  let b = Db.backup db in
  for i = 2 to 10 do
    let t = Db.begin_txn db in
    Db.add db t (oid i) 1;
    Db.commit db t
  done;
  Db.shutdown db;
  Db.checkpoint db;
  (* the backup pinned the log at its replay point; drop the pin to
     model an operator who discarded the backup before truncating *)
  Db.release_backup_pin db;
  Alcotest.(check bool) "truncated past the backup point" true
    (Db.truncate_log db > 0);
  Db.media_failure db;
  match Db.restore_media db b with
  | exception Errors.Log_truncated_past_backup { backup; retained } ->
      Alcotest.(check bool) "typed payload orders the two points" true
        Lsn.(backup < retained)
  | _ -> Alcotest.fail "restore must refuse: the roll-forward gap is gone"

(* --- squeeze fault -------------------------------------------------- *)

let squeeze_shrinks_capacity () =
  let sz = update_size in
  let fault = Fault.create ~seed:5L () in
  let log = Log_store.create ~fault ~capacity_bytes:(20 * sz) () in
  Fault.arm_squeeze_in fault ~appends:3 ~keep:0.5;
  ignore (Log_store.append log (mk_update 1));
  ignore (Log_store.append log (mk_update 2));
  Alcotest.(check (option int)) "not yet" (Some (20 * sz))
    (Log_store.capacity_bytes log);
  ignore (Log_store.append log (mk_update 3));
  (match Log_store.capacity_bytes log with
  | Some c ->
      Alcotest.(check bool) "halved" true (c <= 10 * sz && c >= 2 * sz)
  | None -> Alcotest.fail "capacity vanished");
  Alcotest.(check int) "squeeze counted" 1 (Fault.stats fault).Fault.squeezes;
  Alcotest.(check bool) "fires once per arming" false (Fault.squeeze_armed fault)

(* --- pressure-storm smoke ------------------------------------------ *)

let pressure_storm_smoke () =
  List.iter
    (fun impl ->
      let config =
        {
          Pressure_storm.default_config with
          impl;
          steps = 250;
          capacity_bytes = 3000;
          crash_every = 25;
          seed = 5L;
        }
      in
      let o = Pressure_storm.run ~config () in
      if not (Pressure_storm.ok o) then
        Alcotest.failf "%a" Pressure_storm.pp_outcome o;
      Alcotest.(check bool) "crashed and recovered" true (o.recoveries > 0))
    [ Config.Rh; Config.Lazy; Config.Eager ]

let suite =
  [
    Alcotest.test_case "byte capacity enforced" `Quick byte_capacity_enforced;
    Alcotest.test_case "record capacity enforced" `Quick
      record_capacity_enforced;
    Alcotest.test_case "reservation blocks admission" `Quick
      reservation_blocks_admission;
    Alcotest.test_case "pressure reads back" `Quick pressure_reads_back;
    Alcotest.test_case "abort survives a full log" `Quick
      abort_survives_full_log;
    Alcotest.test_case "begin reserves rollback space" `Quick
      begin_reserves_rollback_space;
    Alcotest.test_case "restart survives a full log" `Quick
      restart_survives_full_log;
    Alcotest.test_case "backpressure raises typed errors" `Quick
      backpressure_typed_errors;
    Alcotest.test_case "pp_exn covers the pressure errors" `Quick
      pp_exn_covers_pressure_errors;
    Alcotest.test_case "governor reclaims below soft" `Quick
      governor_reclaims_below_soft;
    Alcotest.test_case "governor victimizes the oldest pinner" `Quick
      governor_victimizes_oldest_pinner;
    Alcotest.test_case "governor escalation ladder" `Quick
      governor_escalation_ladder;
    Alcotest.test_case "horizon pinners oldest first" `Quick
      horizon_pinners_oldest_first;
    Alcotest.test_case "truncation reclaims to the pinned scope (E8)" `Quick
      truncation_reclaims_to_pinned_scope;
    Alcotest.test_case "truncated log recovers" `Quick truncated_log_recovers;
    Alcotest.test_case "media restore refused past truncation" `Quick
      media_restore_refused_past_truncation;
    Alcotest.test_case "squeeze shrinks capacity" `Quick
      squeeze_shrinks_capacity;
    Alcotest.test_case "pressure storm (all engines)" `Slow
      pressure_storm_smoke;
  ]
