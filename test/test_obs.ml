(* The unified observability layer: metrics registry determinism, trace
   ring wraparound, delegation-lineage queries across a crash, and the
   recovery profiler surfaced through [Report.profile] on all three
   engines. *)

open Ariesrh_types
open Ariesrh_core
module Obs = Ariesrh_obs
module Log_store = Ariesrh_wal.Log_store

let xid = Xid.of_int
let oid = Oid.of_int

let mk ?(impl = Config.Rh) ?(tracing = false) () =
  Db.create ~tracing
    (Config.make ~n_objects:16 ~objects_per_page:4 ~buffer_capacity:8 ~impl
       ~locking:true ())

let flush_log db =
  Log_store.flush (Db.log_store db) ~upto:(Log_store.head (Db.log_store db))

(* --- metrics registry ---------------------------------------------- *)

let registry_snapshot_deterministic () =
  let m = Obs.Metrics.create () in
  let a = ref 0 in
  Obs.Metrics.counter m ~help:"test counter"
    ~labels:[ ("engine", "rh") ]
    "t_total"
    (fun () -> !a);
  Obs.Metrics.counter m ~help:"test counter"
    ~labels:[ ("engine", "eager") ]
    "t_total"
    (fun () -> 7);
  Obs.Metrics.gauge m ~help:"test gauge" "b_gauge" (fun () -> 3);
  Obs.Metrics.histogram m ~help:"test hist" "a_hist" (fun () ->
      { Obs.Metrics.bounds = [| 1; 2 |]; counts = [| 1; 0; 2 |]; sum = 9 });
  a := 5;
  let s1 = Obs.Metrics.snapshot m in
  let s2 = Obs.Metrics.snapshot m in
  (* same registry state -> byte-identical JSON, twice *)
  Alcotest.(check string)
    "snapshot JSON is reproducible"
    (Obs.Json.to_string (Obs.Metrics.to_json s1))
    (Obs.Json.to_string (Obs.Metrics.to_json s2));
  (* sorted by (name, labels) *)
  Alcotest.(check (list string))
    "sorted by name then labels"
    [ "a_hist"; "b_gauge"; "t_total"; "t_total" ]
    (List.map (fun s -> s.Obs.Metrics.name) s1);
  (match s1 with
  | _ :: _ :: t1 :: t2 :: _ ->
      Alcotest.(check (list (pair string string)))
        "eager label sorts first"
        [ ("engine", "eager") ]
        t1.Obs.Metrics.labels;
      Alcotest.(check (list (pair string string)))
        "rh label second"
        [ ("engine", "rh") ]
        t2.Obs.Metrics.labels
  | _ -> Alcotest.fail "expected 4 samples");
  (* find *)
  (match Obs.Metrics.find s1 ~labels:[ ("engine", "rh") ] "t_total" with
  | Some { value = Obs.Metrics.Int 5; _ } -> ()
  | _ -> Alcotest.fail "find t_total{engine=rh} = 5");
  (* re-registration replaces the source, not duplicates it *)
  Obs.Metrics.gauge m ~help:"test gauge" "b_gauge" (fun () -> 11);
  let s3 = Obs.Metrics.snapshot m in
  Alcotest.(check int) "still 4 samples" 4 (List.length s3);
  match Obs.Metrics.find s3 "b_gauge" with
  | Some { value = Obs.Metrics.Int 11; _ } -> ()
  | _ -> Alcotest.fail "re-registered gauge reads 11"

let registry_diff_and_merge () =
  let m = Obs.Metrics.create () in
  let c = ref 2 and g = ref 10 in
  Obs.Metrics.counter m "c_total" (fun () -> !c);
  Obs.Metrics.gauge m "g" (fun () -> !g);
  let before = Obs.Metrics.snapshot m in
  c := 9;
  g := 4;
  let after = Obs.Metrics.snapshot m in
  let d = Obs.Metrics.diff after before in
  (match Obs.Metrics.find d "c_total" with
  | Some { value = Obs.Metrics.Int 7; _ } -> ()
  | _ -> Alcotest.fail "counter diff subtracts (9-2)");
  (match Obs.Metrics.find d "g" with
  | Some { value = Obs.Metrics.Int 4; _ } -> ()
  | _ -> Alcotest.fail "gauge diff keeps the after value");
  let merged = Obs.Metrics.merge [ after; after ] in
  (match Obs.Metrics.find merged "c_total" with
  | Some { value = Obs.Metrics.Int 18; _ } -> ()
  | _ -> Alcotest.fail "merged counters sum");
  match Obs.Metrics.find merged "g" with
  | Some { value = Obs.Metrics.Int 4; _ } -> ()
  | _ -> Alcotest.fail "merged gauges take the last value"

(* --- trace ring ---------------------------------------------------- *)

let ring_wraparound () =
  let r = Obs.Ring.create ~capacity:4 ~enabled:true () in
  for i = 1 to 10 do
    Obs.Ring.emit r (Obs.Event.Begin { xid = xid i; lsn = Lsn.of_int i })
  done;
  Alcotest.(check int) "total counts every emit" 10 (Obs.Ring.total r);
  Alcotest.(check int) "dropped = total - capacity" 6 (Obs.Ring.dropped r);
  Alcotest.(check (list int))
    "retained window is the newest 4, oldest first" [ 6; 7; 8; 9 ]
    (List.map (fun e -> e.Obs.Ring.seq) (Obs.Ring.entries r));
  Alcotest.(check (list int))
    "last 2" [ 8; 9 ]
    (List.map (fun e -> e.Obs.Ring.seq) (Obs.Ring.last r 2));
  Obs.Ring.clear r;
  Alcotest.(check int) "clear empties the window" 0
    (List.length (Obs.Ring.entries r));
  (* a disabled ring does nothing *)
  let d = Obs.Ring.create () in
  Alcotest.(check bool) "disabled by default" false (Obs.Ring.enabled d);
  Obs.Ring.emit d (Obs.Event.Crash { durable = Lsn.nil });
  Alcotest.(check int) "emit on disabled ring is a no-op" 0 (Obs.Ring.total d)

(* --- lineage across a delegation chain crossing a crash ------------ *)

let lineage_chain_across_crash () =
  let db = mk ~tracing:true () in
  let ring = Db.ring db in
  let t1 = Db.begin_txn db in
  Db.add db t1 (oid 3) 5;
  let u = Db.last_lsn_of db t1 in
  let t2 = Db.begin_txn db in
  let t3 = Db.begin_txn db in
  Db.delegate db ~from_:t1 ~to_:t2 (oid 3);
  Db.delegate db ~from_:t2 ~to_:t3 (oid 3);
  (* t1's commit forces the log, making the update and both delegate
     records durable; responsibility lives with t3, which never commits *)
  Db.commit db t1;
  let before_crash = Obs.Ring.total ring in
  (match Obs.Lineage.query ring ~lsn:u () with
  | None -> Alcotest.fail "update should be in the retained window"
  | Some l ->
      Alcotest.(check int) "invoker is t1" (Xid.to_int t1)
        (Xid.to_int l.Obs.Lineage.invoker);
      Alcotest.(check int) "holder is t3 after the chain" (Xid.to_int t3)
        (Xid.to_int l.Obs.Lineage.holder);
      Alcotest.(check int) "two transfers" 2
        (List.length l.Obs.Lineage.transfers);
      (match l.Obs.Lineage.transfers with
      | [ a; b ] ->
          Alcotest.(check int) "first hop from t1" (Xid.to_int t1)
            (Xid.to_int a.Obs.Lineage.from_);
          Alcotest.(check int) "first hop to t2" (Xid.to_int t2)
            (Xid.to_int a.Obs.Lineage.to_);
          Alcotest.(check int) "second hop to t3" (Xid.to_int t3)
            (Xid.to_int b.Obs.Lineage.to_)
      | _ -> Alcotest.fail "transfer chain shape");
      match l.Obs.Lineage.status with
      | Obs.Lineage.Live -> ()
      | s -> Alcotest.failf "expected Live, got %s" (Obs.Lineage.status_str s));
  (* crash: t3 is a loser, so restart compensates the delegated update *)
  Db.crash db;
  ignore (Db.recover db);
  (match Obs.Lineage.query ring ~lsn:u () with
  | None -> Alcotest.fail "lineage survives the crash"
  | Some l -> (
      Alcotest.(check int) "holder still t3" (Xid.to_int t3)
        (Xid.to_int l.Obs.Lineage.holder);
      match l.Obs.Lineage.status with
      | Obs.Lineage.Compensated _ -> ()
      | s ->
          Alcotest.failf "expected Compensated after restart, got %s"
            (Obs.Lineage.status_str s)));
  (* the as-of view rewinds history: before the crash it was live *)
  match Obs.Lineage.query ring ~lsn:u ~as_of:before_crash () with
  | Some { Obs.Lineage.status = Obs.Lineage.Live; _ } -> ()
  | Some { Obs.Lineage.status = s; _ } ->
      Alcotest.failf "as-of view should be Live, got %s"
        (Obs.Lineage.status_str s)
  | None -> Alcotest.fail "as-of query finds the update"

(* --- recovery profiler on all three engines ------------------------ *)

let profiler_phases impl () =
  let db = mk ~impl () in
  let t1 = Db.begin_txn db in
  Db.add db t1 (oid 1) 2;
  Db.commit db t1;
  let t2 = Db.begin_txn db in
  Db.add db t2 (oid 2) 3;
  let t3 = Db.begin_txn db in
  Db.delegate db ~from_:t2 ~to_:t3 (oid 2);
  flush_log db;
  Db.crash db;
  let r = Db.recover db in
  let prof = r.Ariesrh_recovery.Report.profile in
  let phase name =
    match
      List.find_opt
        (fun p -> p.Obs.Profiler.name = name)
        (Obs.Profiler.phases prof)
    with
    | Some p -> p
    | None -> Alcotest.failf "missing profiler phase %s" name
  in
  let fwd = phase "restart.forward" in
  Alcotest.(check bool) "forward ran" true (fwd.Obs.Profiler.runs >= 1);
  Alcotest.(check bool)
    "forward counted records" true
    (match List.assoc_opt "records" fwd.Obs.Profiler.counts with
    | Some n -> n > 0
    | None -> false);
  let bwd = phase "restart.backward" in
  Alcotest.(check bool) "backward ran" true (bwd.Obs.Profiler.runs >= 1);
  Alcotest.(check bool)
    "backward counted the undos" true
    (List.assoc_opt "undos" bwd.Obs.Profiler.counts = Some r.undos);
  ignore (phase "restart.finish");
  (* deterministic artifact: no wall time in the JSON *)
  let json = Obs.Json.to_string (Obs.Profiler.to_json prof) in
  Alcotest.(check bool)
    "profiler JSON carries no seconds" false
    (let rec contains i =
       i + 7 <= String.length json
       && (String.sub json i 7 = "seconds" || contains (i + 1))
     in
     contains 0)

(* The surgery/audit counters are registered at Db.create and must show
   up — with correct values — in the exported OpenMetrics text. An
   eager delegation plus an audited recovery drives audit_runs to at
   least 1; a clean log keeps failures, fallbacks and surgery
   resolutions at 0 (crash-free shutdown leaves no surgery to roll). *)
let surgery_and_audit_counters_exported () =
  let db =
    Db.create
      (Config.make ~n_objects:16 ~objects_per_page:4 ~buffer_capacity:8
         ~impl:Config.Eager ~locking:true ~audit:true ())
  in
  let t1 = Db.begin_txn db in
  Db.add db t1 (oid 1) 2;
  let t2 = Db.begin_txn db in
  Db.delegate db ~from_:t1 ~to_:t2 (oid 1);
  Db.commit db t2;
  Db.commit db t1;
  flush_log db;
  Db.crash db;
  ignore (Db.recover db);
  let text = Obs.Metrics.to_openmetrics (Obs.Metrics.snapshot (Db.metrics db)) in
  (* Every Db registry now carries backend and shard base labels. *)
  let line name v =
    Printf.sprintf "%s{backend=\"sim\",shard=\"0\"} %d" name v
  in
  let contains needle =
    let lh = String.length text and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub text i ln = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "openmetrics has %S" needle)
        true (contains needle))
    [
      line "ariesrh_audit_runs_total" (Db.env db).Ariesrh_recovery.Env.audit_runs;
      line "ariesrh_audit_failures_total" 0;
      line "ariesrh_rewrite_fallbacks_total" 0;
      line "ariesrh_surgery_rollbacks_total" 0;
      (* restart re-installs the delegation's ended surgery *)
      line "ariesrh_surgery_rollforwards_total"
        (Db.env db).Ariesrh_recovery.Env.surgery_rolled_forward;
    ];
  Alcotest.(check bool) "audited recovery ran" true
    ((Db.env db).Ariesrh_recovery.Env.audit_runs >= 1);
  Alcotest.(check bool) "the surgery was re-installed" true
    ((Db.env db).Ariesrh_recovery.Env.surgery_rolled_forward >= 1);
  Alcotest.(check (list string)) "manual audit is clean" [] (Db.audit db);
  Alcotest.(check bool) "not degraded" false (Db.degraded db);
  Alcotest.(check int) "no fallbacks" 0 (Db.rewrite_fallbacks db)

let suite =
  [
    Alcotest.test_case "registry: snapshot determinism" `Quick
      registry_snapshot_deterministic;
    Alcotest.test_case "registry: diff and merge" `Quick
      registry_diff_and_merge;
    Alcotest.test_case "ring: wraparound and disabled no-op" `Quick
      ring_wraparound;
    Alcotest.test_case "lineage: delegate chain across a crash" `Quick
      lineage_chain_across_crash;
    Alcotest.test_case "profiler: phases under rh" `Quick
      (profiler_phases Config.Rh);
    Alcotest.test_case "profiler: phases under eager" `Quick
      (profiler_phases Config.Eager);
    Alcotest.test_case "profiler: phases under lazy" `Quick
      (profiler_phases Config.Lazy);
    Alcotest.test_case "surgery/audit counters exported" `Quick
      surgery_and_audit_counters_exported;
  ]
