(* Media resilience: the durable archive, continuous WAL archiving,
   silent-corruption injection, the scrubber's detect/quarantine/heal
   cycle, and cold restore after total media loss. *)

open Ariesrh_types
open Ariesrh_storage
open Ariesrh_wal
open Ariesrh_core
open Ariesrh_workload
module Fault = Ariesrh_fault.Fault

let oid = Oid.of_int

let scratch = ref 0

let fresh_dir tag =
  incr scratch;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ariesrh-media-%d-%s-%d" (Unix.getpid ()) tag !scratch)
  in
  Backend.remove_tree d;
  d

let commit_write db o v =
  let x = Db.begin_txn db in
  Db.write db x (oid o) v;
  Db.commit db x

(* --- pp_exn totality ------------------------------------------------ *)

(* Every typed exception the engine can raise must render as prose, not
   fall through to [Printexc]. The table is the contract: adding an
   exception without teaching [Errors.pp_exn] about it fails here. *)
let pp_exn_total () =
  let x = Xid.of_int 3 and l = Lsn.of_int 7 in
  let table =
    [
      (Errors.Conflict { requester = x; holders = [ Xid.of_int 4 ] },
       "lock conflict");
      (Errors.No_such_txn x, "no such transaction");
      (Errors.Txn_not_active x, "not active");
      (Errors.Not_responsible { xid = x; oid = oid 1 }, "not responsible");
      (Errors.Overloaded { xid = None; reason = Errors.Begin_refused },
       "overloaded");
      (Errors.Overloaded { xid = Some x; reason = Errors.Delegation_refused },
       "delegations refused");
      (Errors.Log_truncated_past_backup { backup = l; retained = Lsn.of_int 9 },
       "truncated past the backup");
      (Errors.Unsupported_by_engine { op = "delegate_update"; impl = "eager" },
       "not supported");
      (Errors.Archive_lagging { durable = Lsn.of_int 40; archived = l },
       "archiving lagging");
      (Errors.Media_unhealable { target = "page"; id = 2 },
       "unhealable media corruption");
      (Errors.History_unavailable
         { lsn = Lsn.of_int 2; available_from = l;
           available_upto = Lsn.of_int 40 },
       "history unavailable");
      (Archive.Archive_corrupt { path = "pages.arc"; what = "bad crc" },
       "media archive corrupt");
      (Log_store.Log_full
         { dimension = Log_store.Records; need = 3; used = 9; reserved = 2;
           capacity = 10 },
       "log full");
      (Log_store.Corrupt_record { lsn = l; error = Record.Checksum_mismatch },
       "corrupt log record");
      (Buffer_pool.Torn_page (Page_id.of_int 1), "torn data page");
      (Backend.Io_error { op = "pwrite"; path = "wal.0"; error = Unix.ENOSPC },
       "I/O error");
      (Log_device.Wal_frame_corrupt { offset = 128; expected = 1; got = 2 },
       "WAL frame corrupt");
      (Fault.Injected_crash { io = 12; site = Fault.Disk_write },
       "injected crash");
      (Ariesrh_recovery.Audit.Audit_failed [ "page 0 stale" ],
       "self-audit failed");
      (Errors.Xfer_refused { oid = oid 1; holders = [ x ] },
       "cross-shard transfer");
      (Ariesrh_recovery.Rewrite.Surgery_corrupt "orphan intent",
       "surgery protocol violated");
      (Errors.Recovering { oid = oid 1; backlog = 3 }, "still recovering");
      (Errors.Recovery_incomplete { backlog = 2 }, "recovery incomplete");
    ]
  in
  List.iter
    (fun (e, want) ->
      let got = Format.asprintf "%a" Errors.pp_exn e in
      let contains s sub =
        let n = String.length sub in
        let rec go i = i + n <= String.length s
                       && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      if not (contains got want) then
        Alcotest.failf "pp_exn for %s: %S does not mention %S"
          (Printexc.to_string e) got want;
      if contains got (Printexc.to_string e) then
        Alcotest.failf "pp_exn fell through to Printexc for %s"
          (Printexc.to_string e))
    table;
  (* unknown exceptions still render *)
  Alcotest.(check bool) "fallback is total" true
    (String.length (Format.asprintf "%a" Errors.pp_exn Exit) > 0)

(* --- the archive on its own ----------------------------------------- *)

let archive_dir_roundtrip () =
  let dir = fresh_dir "arc" in
  let a = Archive.create ~dir ~n_objects:8 ~objects_per_page:4 ~impl_tag:0 () in
  let frames = [ "alpha-record"; "beta-record"; "gamma-record" ] in
  List.iteri (fun i s -> Archive.append_wal a ~idx:i s) frames;
  let pages =
    Array.init 2 (fun _ ->
        let p = Page.create ~slots:4 in
        Page.seal p;
        p)
  in
  Archive.put_snapshot a ~pages ~complete_upto:(Lsn.of_int 3)
    ~master:(Lsn.of_int 1);
  Archive.sync a;
  Archive.close a;
  let b = Archive.open_dir dir in
  let g = Archive.geometry b in
  Alcotest.(check int) "n_objects survives" 8 g.Archive.n_objects;
  Alcotest.(check int) "archived_upto survives" 3 (Archive.archived_upto b);
  Alcotest.(check (option string)) "frame bytes survive" (Some "beta-record")
    (Archive.wal_get b ~idx:1);
  (match Archive.snapshot b with
  | None -> Alcotest.fail "snapshot lost on reopen"
  | Some s ->
      Alcotest.(check int) "complete_upto survives" 3
        (Lsn.to_int s.Archive.complete_upto));
  Archive.close b;
  Backend.remove_tree dir

let archive_detects_and_heals_rot () =
  let a = Archive.create ~n_objects:8 ~objects_per_page:4 ~impl_tag:0 () in
  Archive.append_wal a ~idx:0 "first";
  Archive.append_wal a ~idx:1 "second";
  Archive.bitrot_wal a ~idx:1;
  let _, bad_wal = Archive.check a in
  Alcotest.(check (list int)) "rot detected" [ 1 ] bad_wal;
  Archive.heal_wal a ~idx:1 "second";
  let bad_pages, bad_wal = Archive.check a in
  Alcotest.(check (list int)) "healed" [] bad_wal;
  Alcotest.(check (list int)) "pages untouched" [] bad_pages;
  Alcotest.(check (option string)) "healed bytes" (Some "second")
    (Archive.wal_get a ~idx:1)

let archive_appends_must_be_consecutive () =
  let a = Archive.create ~n_objects:8 ~objects_per_page:4 ~impl_tag:0 () in
  Archive.append_wal a ~idx:0 "first";
  Alcotest.check_raises "gap refused"
    (Invalid_argument "Archive.append_wal: idx 5, expected 1") (fun () ->
      Archive.append_wal a ~idx:5 "gap")

(* --- injected silent corruption, healed by the scrubber -------------- *)

(* At-rest bitrot timestamps itself on the I/O clock; with an archive
   attached every victim (page or archived WAL record) has an intact
   redundant source, so a full scrub must end with an empty quarantine
   and the exact committed state after a crash-restart. *)
let bitrot_is_healed () =
  let fault = Fault.create ~seed:42L () in
  let db = Driver.fresh_db ~fault ~n_objects:32 () in
  ignore (Db.attach_archive db);
  for i = 0 to 15 do
    commit_write db i (100 + i)
  done;
  ignore (Db.archive_catchup db);
  let ios = (Fault.stats fault).Fault.ios in
  Fault.arm_bitrot fault ~at:(ios + 1);
  Fault.arm_bitrot fault ~at:(ios + 4);
  for i = 0 to 7 do
    commit_write db i (200 + i)
  done;
  Alcotest.(check int) "both rots fired" 2 (Fault.stats fault).Fault.bitrots;
  let expected = Db.peek_all db in
  let o = Db.scrub db in
  Alcotest.(check int) "nothing unhealable" 0 o.Db.unhealable;
  Alcotest.(check (list (pair string int))) "quarantine empty" []
    (Db.quarantined db);
  Db.crash db;
  ignore (Db.scrub db);
  ignore (Db.recover db);
  Alcotest.(check (array int)) "state intact after rot + crash" expected
    (Db.peek_all db)

(* A lost write leaves a stale but checksum-valid main image; only the
   main/shadow disagreement betrays it. *)
let lost_write_is_healed () =
  let fault = Fault.create ~seed:7L () in
  let db = Driver.fresh_db ~fault ~n_objects:32 () in
  for i = 0 to 15 do
    commit_write db i (10 + i)
  done;
  Db.shutdown db;
  for i = 0 to 15 do
    commit_write db i (50 + i)
  done;
  let expected = Db.peek_all db in
  Fault.arm_lost_write fault ~at:(Fault.stats fault).Fault.ios;
  Db.shutdown db;
  Alcotest.(check int) "lost write fired" 1
    (Fault.stats fault).Fault.lost_writes;
  let o = Db.scrub db in
  Alcotest.(check bool) "divergence caught" true (o.Db.corrupt >= 1);
  Alcotest.(check int) "healed from shadow + replay" o.Db.corrupt o.Db.healed;
  Db.crash db;
  ignore (Db.scrub db);
  ignore (Db.recover db);
  Alcotest.(check (array int)) "no stale page survives" expected
    (Db.peek_all db)

let misdirected_write_is_healed () =
  let fault = Fault.create ~seed:11L () in
  let db = Driver.fresh_db ~fault ~n_objects:32 () in
  for i = 0 to 15 do
    commit_write db i (10 + i)
  done;
  Db.shutdown db;
  for i = 0 to 15 do
    commit_write db i (70 + i)
  done;
  let expected = Db.peek_all db in
  Fault.arm_misdirected_write fault ~at:(Fault.stats fault).Fault.ios;
  Db.shutdown db;
  Alcotest.(check int) "misdirect fired" 1
    (Fault.stats fault).Fault.misdirected_writes;
  let o = Db.scrub db in
  Alcotest.(check bool) "victim and target both caught" true (o.Db.corrupt >= 1);
  Alcotest.(check int) "all healed" 0 o.Db.unhealable;
  Db.crash db;
  ignore (Db.scrub db);
  ignore (Db.recover db);
  Alcotest.(check (array int)) "no foreign image survives" expected
    (Db.peek_all db)

(* Per-record WAL checksums detect rot; the archived copy heals it. *)
let wal_rot_healed_from_archive () =
  let db = Driver.fresh_db ~n_objects:32 () in
  ignore (Db.attach_archive db);
  for i = 0 to 15 do
    commit_write db i (10 + i)
  done;
  ignore (Db.archive_catchup db);
  let ls = Db.log_store db in
  let idx = Lsn.to_int (Log_store.durable ls) / 2 in
  Log_store.bitrot_record ls ~idx;
  Alcotest.(check bool) "rot detectable" false (Log_store.record_intact ls ~idx);
  let o = Db.scrub_wal db in
  Alcotest.(check int) "one record corrupt" 1 o.Db.corrupt;
  Alcotest.(check int) "healed from the archive" 1 o.Db.healed;
  Alcotest.(check bool) "bytes restored verbatim" true
    (Log_store.record_intact ls ~idx);
  Db.crash db;
  ignore (Db.recover db);
  Alcotest.(check int) "replay clean over healed record" 20
    (Db.peek db (oid 10))

(* --- archiving keeps up, or admission pushes back -------------------- *)

let archive_lagging_backpressure () =
  let db =
    Db.create
      (Config.make ~n_objects:32 ~objects_per_page:4 ~buffer_capacity:8
         ~max_archive_lag:4 ())
  in
  ignore (Db.attach_archive db);
  let raised = ref false in
  (try
     for i = 0 to 19 do
       commit_write db (i mod 32) i
     done
   with Errors.Archive_lagging _ -> raised := true);
  Alcotest.(check bool) "lag bound enforced at begin" true !raised;
  ignore (Db.archive_catchup db);
  (* caught up: admission resumes *)
  commit_write db 0 999;
  Alcotest.(check int) "admitted after catchup" 999 (Db.peek db (oid 0))

(* Truncation must never reclaim records the archive has not copied:
   the archive pin holds reclamation back, the catchup releases it. *)
let truncation_never_outruns_archive () =
  let db = Driver.fresh_db ~n_objects:32 () in
  let a = Db.attach_archive db in
  ignore (Db.backup_to_archive db);
  for i = 0 to 31 do
    commit_write db i i
  done;
  Db.shutdown db;
  Db.checkpoint db;
  ignore (Db.truncate_log db);
  let ls = Db.log_store db in
  Alcotest.(check bool) "reclaimed prefix fully archived" true
    (Db.archived_upto db >= Lsn.to_int (Log_store.truncated_below ls) - 1);
  (* and therefore the archive still rebuilds the exact state cold *)
  ignore (Db.archive_catchup db);
  let expected = Db.peek_all db in
  let db2 = Db.create (Db.config db) in
  ignore (Db.restore_from_archive db2 a);
  Alcotest.(check (array int)) "cold restore exact across truncation" expected
    (Db.peek_all db2);
  Alcotest.(check (list string)) "restored state audits clean" []
    (Db.audit db2)

(* The explicit page-image backup pins reclamation the same way. *)
let backup_pin_blocks_truncation () =
  let db = Driver.fresh_db ~n_objects:16 () in
  commit_write db 0 1;
  let b = Db.backup db in
  for i = 0 to 15 do
    commit_write db i (2 * i)
  done;
  let expected = Db.peek_all db in
  Db.shutdown db;
  Db.checkpoint db;
  ignore (Db.truncate_log db);
  let ls = Db.log_store db in
  Alcotest.(check bool) "log retained back to the backup point" true
    (Lsn.to_int (Log_store.truncated_below ls)
    <= Lsn.to_int (Db.backup_pin db));
  Db.media_failure db;
  ignore (Db.restore_media db b);
  Alcotest.(check (array int)) "pin kept the restore possible" expected
    (Db.peek_all db);
  (* operator discards the backup: the pin lifts and the typed error
     becomes reachable again *)
  Db.release_backup_pin db;
  commit_write db 0 5;
  Db.shutdown db;
  Db.checkpoint db;
  ignore (Db.truncate_log db);
  Db.media_failure db;
  match Db.restore_media db b with
  | _ -> Alcotest.fail "restore past truncation must raise"
  | exception Errors.Log_truncated_past_backup _ -> ()

(* --- cold restore after total media loss ----------------------------- *)

let cold_restore backend_dir archive_dir () =
  let backend =
    match backend_dir with
    | None -> Backend.Sim
    | Some d -> Backend.File { dir = d }
  in
  let db = Driver.fresh_db ~backend ~n_objects:32 () in
  let a = Db.attach_archive ?dir:archive_dir db in
  for i = 0 to 15 do
    commit_write db i (i * 3)
  done;
  ignore (Db.backup_to_archive db);
  for i = 8 to 23 do
    commit_write db i (i * 5)
  done;
  ignore (Db.archive_catchup db);
  let expected = Db.peek_all db in
  Db.close db;
  (* total media loss: only the archive survives *)
  (match backend_dir with Some d -> Backend.remove_tree d | None -> ());
  let cold =
    match archive_dir with None -> a | Some d -> Archive.open_dir d
  in
  let db2 = Db.create (Db.config db) in
  ignore (Db.restore_from_archive db2 cold);
  Alcotest.(check (array int)) "exact committed state rebuilt" expected
    (Db.peek_all db2);
  Alcotest.(check (list string)) "audit clean" [] (Db.audit db2);
  (match Db.validate db2 with
  | Ok () -> ()
  | Error m -> Alcotest.failf "restored state invalid: %s" m);
  Db.close db2;
  (match archive_dir with Some d -> Backend.remove_tree d | None -> ())

let cold_restore_sim () = cold_restore None None ()

let cold_restore_file () =
  cold_restore (Some (fresh_dir "cold-db")) (Some (fresh_dir "cold-arc")) ()

(* --- restore is all-or-typed-error, whatever got truncated ----------- *)

(* Whatever interleaving of commits, checkpoints, truncations and pin
   releases follows a backup, restoring from it either reproduces the
   full committed state or raises the typed error — never a partial
   restore. *)
let prop_restore_total =
  QCheck.Test.make ~count:100
    ~name:"restore after truncate interleavings is all-or-typed-error"
    QCheck.(make Gen.(list_size (int_bound 14) (int_bound 3)))
    (fun ops ->
      let db = Driver.fresh_db ~n_objects:16 () in
      commit_write db 0 1;
      let b = Db.backup db in
      let v = ref 1 in
      List.iter
        (fun op ->
          match op with
          | 0 ->
              incr v;
              commit_write db (!v mod 16) !v
          | 1 ->
              Db.shutdown db;
              Db.checkpoint db
          | 2 -> ignore (Db.truncate_log db)
          | _ -> Db.release_backup_pin db)
        ops;
      let expected = Db.peek_all db in
      Db.media_failure db;
      match Db.restore_media db b with
      | _ -> Db.peek_all db = expected
      | exception Errors.Log_truncated_past_backup _ -> true)

(* --- the media-storm, small ------------------------------------------ *)

let storm_config =
  {
    Media_storm.default_config with
    Media_storm.rounds = 4;
    steps_per_round = 40;
    clients = 3;
    n_objects = 32;
    crash_every_rounds = 2;
  }

let storm_smoke impl () =
  let out = Media_storm.run ~config:storm_config ~impl () in
  if not (Media_storm.ok out) then
    Alcotest.failf "media-storm failed:@ %a" Media_storm.pp_outcome out;
  Alcotest.(check int) "nothing unhealable" 0 out.Media_storm.unhealable;
  Alcotest.(check bool) "corruption was actually injected" true
    (out.Media_storm.injected_bitrot + out.Media_storm.injected_lost
     + out.Media_storm.injected_misdirected
     + out.Media_storm.injected_archive_rot
    > 0);
  Alcotest.(check int) "cold restore ran" 1 out.Media_storm.cold_restores

let storm_smoke_file () =
  let config =
    {
      storm_config with
      Media_storm.rounds = 3;
      backend_root = Some (fresh_dir "storm-db");
      archive_root = Some (fresh_dir "storm-arc");
    }
  in
  let out = Media_storm.run ~config ~impl:Config.Rh () in
  if not (Media_storm.ok out) then
    Alcotest.failf "file-backed media-storm failed:@ %a" Media_storm.pp_outcome
      out

let suite =
  [
    Alcotest.test_case "pp_exn renders every typed error" `Quick pp_exn_total;
    Alcotest.test_case "archive dir round-trip" `Quick archive_dir_roundtrip;
    Alcotest.test_case "archive detects and heals rot" `Quick
      archive_detects_and_heals_rot;
    Alcotest.test_case "archive appends must be consecutive" `Quick
      archive_appends_must_be_consecutive;
    Alcotest.test_case "bitrot healed, state exact" `Quick bitrot_is_healed;
    Alcotest.test_case "lost write healed from shadow" `Quick
      lost_write_is_healed;
    Alcotest.test_case "misdirected write healed" `Quick
      misdirected_write_is_healed;
    Alcotest.test_case "WAL rot healed from archive" `Quick
      wal_rot_healed_from_archive;
    Alcotest.test_case "archive lag engages backpressure" `Quick
      archive_lagging_backpressure;
    Alcotest.test_case "truncation never outruns the archive" `Quick
      truncation_never_outruns_archive;
    Alcotest.test_case "backup pin blocks truncation" `Quick
      backup_pin_blocks_truncation;
    Alcotest.test_case "cold restore (sim)" `Quick cold_restore_sim;
    Alcotest.test_case "cold restore (file)" `Quick cold_restore_file;
    QCheck_alcotest.to_alcotest prop_restore_total;
    Alcotest.test_case "media-storm smoke (rh)" `Quick (storm_smoke Config.Rh);
    Alcotest.test_case "media-storm smoke (eager)" `Quick
      (storm_smoke Config.Eager);
    Alcotest.test_case "media-storm smoke (lazy)" `Quick
      (storm_smoke Config.Lazy);
    Alcotest.test_case "media-storm smoke (file backend)" `Quick
      storm_smoke_file;
  ]
