(* Workload machinery: the conflict-free generator, the semantic oracle,
   and the contention simulator. *)

open Ariesrh_core
open Ariesrh_workload

(* --- generator --- *)

let generator_scripts_replay_cleanly =
  QCheck.Test.make ~count:200
    ~name:"generated scripts never conflict at replay"
    (QCheck.make ~print:Int64.to_string
       QCheck.Gen.(map Int64.of_int (int_bound 1_000_000)))
    (fun seed ->
      let script = Gen.generate { Gen.default with n_steps = 120 } ~seed in
      let db = Driver.fresh_db ~n_objects:Gen.default.n_objects () in
      (* Driver.run raises on any Conflict *)
      Driver.run db script;
      true)

let generator_deterministic () =
  let s1 = Gen.generate Gen.default ~seed:99L in
  let s2 = Gen.generate Gen.default ~seed:99L in
  Alcotest.(check bool) "same seed, same script" true (s1 = s2);
  let s3 = Gen.generate Gen.default ~seed:100L in
  Alcotest.(check bool) "different seed, different script" false (s1 = s3)

let generator_respects_delegation_rate () =
  let count_delegates s =
    List.length
      (List.filter (function Script.Delegate _ -> true | _ -> false) s)
  in
  let none =
    Gen.generate { Gen.spec_no_delegation with n_steps = 500 } ~seed:5L
  in
  let some =
    Gen.generate { Gen.default with n_steps = 500; p_delegate = 0.3 } ~seed:5L
  in
  Alcotest.(check int) "rate 0 yields none" 0 (count_delegates none);
  Alcotest.(check bool) "rate 0.3 yields plenty" true (count_delegates some > 10)

let script_stats_and_txns () =
  let s =
    [
      Script.Begin 0; Script.Write (0, 1, 5); Script.Add (0, 2, 1);
      Script.Begin 1; Script.Delegate (0, 1, 1); Script.Commit 1;
      Script.Abort 0; Script.Checkpoint;
    ]
  in
  Alcotest.(check int) "two txns" 2 (Script.txns s);
  Alcotest.(check string) "summary"
    "begin=2 read=0 write=1 add=1 delegate=1 savepoint=0 rollback=0 commit=1 \
     abort=1 ckpt=1"
    (Script.stats s)

let serialization_roundtrip =
  QCheck.Test.make ~count:100 ~name:"script serialization roundtrips"
    (QCheck.make ~print:Int64.to_string
       QCheck.Gen.(map Int64.of_int (int_bound 1_000_000)))
    (fun seed ->
      let script = Gen.generate { Gen.default with n_steps = 150 } ~seed in
      Script.of_string (Script.to_string script) = Ok script)

let serialization_reports_bad_lines () =
  (match Script.of_string "begin 0\nfrobnicate 7\n" with
  | Error e ->
      Alcotest.(check bool) "error is informative" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "garbage accepted");
  match Script.of_string "# comment\n\nbegin 0\ncommit 0\n" with
  | Ok [ Script.Begin 0; Script.Commit 0 ] -> ()
  | _ -> Alcotest.fail "comments and blanks should be skipped"

(* --- oracle --- *)

let oracle_basic () =
  let s =
    [
      Script.Begin 0; Script.Write (0, 0, 5); Script.Commit 0;
      Script.Begin 1; Script.Write (1, 1, 7); Script.Abort 1;
      Script.Begin 2; Script.Add (2, 2, 3);
      (* 2 never terminates: loser at crash *)
    ]
  in
  let v = Oracle.expected ~n_objects:4 s in
  Alcotest.(check (array int)) "only committed survive" [| 5; 0; 0; 0 |] v;
  Alcotest.(check (list int)) "winners" [ 0 ] (Oracle.winners s)

let oracle_delegation_chain () =
  let s =
    [
      Script.Begin 0; Script.Begin 1; Script.Begin 2;
      Script.Add (0, 0, 10);
      Script.Delegate (0, 1, 0);
      Script.Delegate (1, 2, 0);
      Script.Abort 0; Script.Abort 1; Script.Commit 2;
    ]
  in
  Alcotest.(check (array int)) "final delegatee decides" [| 10; 0 |]
    (Oracle.expected ~n_objects:2 s)

let oracle_crash_prefix () =
  let s =
    [
      Script.Begin 0; Script.Write (0, 0, 5); Script.Commit 0;
      Script.Begin 1; Script.Write (1, 0, 9); Script.Commit 1;
    ]
  in
  Alcotest.(check (array int)) "before the second commit" [| 5 |]
    (Oracle.expected ~n_objects:1 ~crash_at:5 s);
  Alcotest.(check (array int)) "after it" [| 9 |]
    (Oracle.expected ~n_objects:1 ~crash_at:6 s)

let oracle_split_responsibility () =
  (* same transaction's updates to one object split across delegatees *)
  let s =
    [
      Script.Begin 0; Script.Begin 1; Script.Begin 2;
      Script.Add (0, 0, 100);
      Script.Delegate (0, 1, 0);
      Script.Add (0, 0, 10);
      Script.Delegate (0, 2, 0);
      Script.Commit 1; Script.Abort 2; Script.Abort 0;
    ]
  in
  Alcotest.(check (array int)) "example 2 semantics" [| 100 |]
    (Oracle.expected ~n_objects:1 s)

(* --- simulator --- *)

let sim_state_consistent () =
  let db = Db.create (Config.make ~n_objects:32 ~buffer_capacity:16 ()) in
  let o = Sim.run ~clients:6 ~txns_per_client:40 ~seed:1L db in
  Alcotest.(check bool) "state matches committed increments" true o.state_ok;
  Alcotest.(check int) "all transactions eventually commit" (6 * 40) o.committed

let sim_latency_histograms () =
  (* a live (if never armed) injector: the latency clock is the fault
     layer's logical I/O counter, which a [Fault.none] db keeps at 0 *)
  let fault = Ariesrh_fault.Fault.create ~seed:1L () in
  let db =
    Db.create ~fault (Config.make ~n_objects:32 ~buffer_capacity:16 ())
  in
  let o = Sim.run ~clients:6 ~txns_per_client:40 ~seed:7L db in
  (* every commit is observed exactly once, in one of the txn classes *)
  let measured = List.fold_left (fun a (_, (n, _)) -> a + n) 0 o.latencies in
  Alcotest.(check int) "one latency sample per commit" o.committed measured;
  Alcotest.(check bool) "latency ticks accumulated" true
    (List.exists (fun (_, (_, sum)) -> sum > 0) o.latencies);
  (* and the full distribution is exported through the metrics registry,
     one series per class, bucket counts consistent with the outcome *)
  let series =
    List.filter
      (fun (s : Ariesrh_obs.Metrics.sample) ->
        s.name = "ariesrh_sim_txn_latency_ios")
      (Ariesrh_obs.Metrics.snapshot (Db.metrics db))
  in
  Alcotest.(check int) "one histogram per txn class" 3 (List.length series);
  let total =
    List.fold_left
      (fun a (s : Ariesrh_obs.Metrics.sample) ->
        match s.value with
        | Ariesrh_obs.Metrics.Hist h ->
            a + Array.fold_left ( + ) 0 h.counts
        | _ -> Alcotest.fail "latency series is not a histogram")
      0 series
  in
  Alcotest.(check int) "histogram counts sum to commits" o.committed total

let sim_contention_happens () =
  let db = Db.create (Config.make ~n_objects:4 ~buffer_capacity:16 ()) in
  let o = Sim.run ~clients:8 ~txns_per_client:30 ~n_objects:4 ~seed:2L db in
  Alcotest.(check bool) "waits occurred under contention" true (o.waits > 0);
  Alcotest.(check bool) "state still consistent" true o.state_ok

let sim_deadlocks_resolved () =
  (* few objects + many clients + reads mixed with adds: cycles form *)
  let found = ref false in
  let seed = ref 0 in
  while (not !found) && !seed < 20 do
    incr seed;
    let db = Db.create (Config.make ~n_objects:3 ~buffer_capacity:16 ()) in
    let o =
      Sim.run ~clients:8 ~txns_per_client:20 ~n_objects:3 ~ops_per_txn:5
        ~seed:(Int64.of_int !seed) db
    in
    if o.deadlocks > 0 then begin
      found := true;
      Alcotest.(check bool) "victims aborted" true (o.aborted > 0);
      Alcotest.(check bool) "state consistent despite deadlocks" true
        o.state_ok
    end
  done;
  Alcotest.(check bool) "deadlocks eventually provoked" true !found

let sim_delegation_under_contention () =
  let db = Db.create (Config.make ~n_objects:8 ~buffer_capacity:16 ()) in
  let o =
    Sim.run ~clients:6 ~txns_per_client:40 ~n_objects:8 ~delegation_rate:0.5
      ~seed:3L db
  in
  Alcotest.(check bool) "delegations happened" true (o.delegations > 0);
  Alcotest.(check bool) "state consistent with delegation" true o.state_ok

let sim_survives_crash_after () =
  let db = Db.create (Config.make ~n_objects:16 ~buffer_capacity:16 ()) in
  let o = Sim.run ~clients:4 ~txns_per_client:25 ~n_objects:16 ~seed:4L db in
  Alcotest.(check bool) "pre-crash state ok" true o.state_ok;
  let before = Db.peek_all db in
  Db.crash db;
  ignore (Db.recover db);
  Alcotest.(check bool) "everything was committed: crash changes nothing" true
    (Db.peek_all db = before)

let suite =
  [
    QCheck_alcotest.to_alcotest generator_scripts_replay_cleanly;
    QCheck_alcotest.to_alcotest serialization_roundtrip;
    Alcotest.test_case "serialization errors and comments" `Quick
      serialization_reports_bad_lines;
    Alcotest.test_case "generator deterministic" `Quick generator_deterministic;
    Alcotest.test_case "generator respects delegation rate" `Quick
      generator_respects_delegation_rate;
    Alcotest.test_case "script stats" `Quick script_stats_and_txns;
    Alcotest.test_case "oracle basic" `Quick oracle_basic;
    Alcotest.test_case "oracle delegation chain" `Quick oracle_delegation_chain;
    Alcotest.test_case "oracle crash prefix" `Quick oracle_crash_prefix;
    Alcotest.test_case "oracle split responsibility" `Quick
      oracle_split_responsibility;
    Alcotest.test_case "sim state consistent" `Quick sim_state_consistent;
    Alcotest.test_case "sim latency histograms" `Quick sim_latency_histograms;
    Alcotest.test_case "sim contention happens" `Quick sim_contention_happens;
    Alcotest.test_case "sim deadlocks resolved" `Quick sim_deadlocks_resolved;
    Alcotest.test_case "sim delegation under contention" `Quick
      sim_delegation_under_contention;
    Alcotest.test_case "sim survives crash after" `Quick sim_survives_crash_after;
  ]
