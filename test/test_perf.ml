(* The hot-path optimisations must be invisible: the decoded-record
   cache, the intrusive LRU, group commit, and the invoker-indexed scope
   lookup change how fast the engine goes, never what it does. These
   tests pin the "what it does" half; bench/main.ml's E16 pins the
   "how fast" half with gated logical counters.

   - a qcheck property drives a cached and an uncached log store through
     the same append/rewrite/truncate/crash interleavings and demands
     observational equality after every step (every invalidation rule
     earns its keep here);
   - the intrusive LRU is replayed against a last-used-tick reference
     model on a random skewed access trace — same hits, same misses,
     same victims;
   - crash storms and pressure storms rerun with the cache off and with
     group commit on, demanding identical outcomes (cache) and clean
     oracle verdicts (group commit — its flush batching legitimately
     shifts the I/O-indexed crash points, so byte equality is not the
     contract there);
   - the quarantined eager seed-3 repro's forensic dump must stay
     byte-identical with the cache on and off. *)

open Ariesrh_types
open Ariesrh_core
open Ariesrh_workload
module Log_store = Ariesrh_wal.Log_store
module Record = Ariesrh_wal.Record
module Buffer_pool = Ariesrh_storage.Buffer_pool
module Disk = Ariesrh_storage.Disk
module Prng = Ariesrh_util.Prng

(* --- cache-equivalence property ------------------------------------ *)

type lop =
  | Append of int
  | Flush_head
  | Crash
  | Rewrite of int * int  (* position selector, replacement delta *)
  | Truncate of int  (* position selector *)

let print_lop = function
  | Append d -> Printf.sprintf "append %d" d
  | Flush_head -> "flush"
  | Crash -> "crash"
  | Rewrite (i, d) -> Printf.sprintf "rewrite (%d, %d)" i d
  | Truncate i -> Printf.sprintf "truncate %d" i

let lop_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map (fun d -> Append d) (int_range 1 9));
        (2, return Flush_head);
        (1, return Crash);
        (2, map2 (fun i d -> Rewrite (i, d)) (int_bound 1000) (int_range 10 99));
        (1, map (fun i -> Truncate i) (int_bound 1000));
      ])

let lops_arb =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map print_lop l))
    QCheck.Gen.(list_size (int_range 1 60) lop_gen)

let apply_lop log op =
  match op with
  | Append d ->
      let body =
        Record.Update
          { Record.oid = Oid.of_int 0; page = Page_id.of_int 0; op = Record.Add d }
      in
      ignore (Log_store.append log (Record.mk (Xid.of_int 1) ~prev:Lsn.nil body))
  | Flush_head -> Log_store.flush log ~upto:(Log_store.head log)
  | Crash ->
      Log_store.crash log;
      ignore (Log_store.recover_tail log)
  | Rewrite (i, d) -> (
      let low = Lsn.to_int (Log_store.truncated_below log) in
      let head = Lsn.to_int (Log_store.head log) in
      if head >= low && head >= 1 then
        let lsn = Lsn.of_int (low + (i mod (head - low + 1))) in
        let r = Log_store.read log lsn in
        match r.Record.body with
        | Record.Update u ->
            (* Add deltas encode fixed-width, so the in-place size
               constraint holds *)
            Log_store.rewrite log lsn
              { r with Record.body = Record.Update { u with Record.op = Record.Add d } }
        | _ -> ())
  | Truncate i ->
      let durable = Lsn.to_int (Log_store.durable log) in
      let low = Lsn.to_int (Log_store.truncated_below log) in
      if durable >= low && durable >= 1 then begin
        Log_store.set_master log (Lsn.of_int durable);
        let below = low + (i mod (durable - low + 1)) in
        ignore (Log_store.truncate log ~below:(Lsn.of_int below))
      end

(* Everything a client can see: durability horizon, retained range, and
   the decode of every retained record — read twice, so the second read
   of the cached store is served from the cache if it ever can be. *)
let observe log =
  let low = max 1 (Lsn.to_int (Log_store.truncated_below log)) in
  let head = Lsn.to_int (Log_store.head log) in
  let recs = ref [] in
  for i = head downto low do
    let lsn = Lsn.of_int i in
    let once = Log_store.read_result log lsn in
    let twice = Log_store.read_result log lsn in
    recs := (i, once, twice) :: !recs
  done;
  ( Lsn.to_int (Log_store.durable log),
    head,
    low,
    Lsn.to_int (Log_store.master log),
    !recs )

let cache_equivalence =
  QCheck.Test.make ~count:300 ~name:"cached log reads = fresh decodes"
    lops_arb (fun ops ->
      (* a tiny cache capacity forces the wholesale-reset path too *)
      let cached = Log_store.create ~record_cache:7 () in
      let cold = Log_store.create ~record_cache:0 () in
      List.iter
        (fun op ->
          apply_lop cached op;
          apply_lop cold op;
          let a = observe cached and b = observe cold in
          if a <> b then
            QCheck.Test.fail_reportf "divergence after %s" (print_lop op))
        ops;
      Alcotest.(check int)
        "uncached store never touched its cache" 0
        (Log_store.record_cache_hits cold + Log_store.record_cache_misses cold);
      true)

(* --- LRU parity against a reference model --------------------------- *)

(* The seed's eviction policy folded over every frame for the smallest
   last-used tick; the intrusive list must pick the same victims. Replay
   a random skewed trace against a last-used-tick model: every access's
   hit/miss verdict must match, which pins the victim of every eviction
   (a wrong victim surfaces as a wrong verdict as soon as the wrongly
   evicted page is touched again). *)
let lru_matches_reference_model () =
  let pages = 64 and capacity = 8 in
  let disk = Disk.create ~pages ~slots_per_page:8 () in
  let pool = Buffer_pool.create ~capacity ~disk ~wal_flush:(fun _ -> ()) () in
  let rng = Prng.create 0xCAFEL in
  (* reference: resident page -> last-used tick; evict the minimum *)
  let resident = Hashtbl.create 16 in
  let tick = ref 0 in
  let model_access pid =
    incr tick;
    if Hashtbl.mem resident pid then begin
      Hashtbl.replace resident pid !tick;
      `Hit
    end
    else begin
      if Hashtbl.length resident >= capacity then begin
        let victim, _ =
          Hashtbl.fold
            (fun p t (bp, bt) -> if t < bt then (p, t) else (bp, bt))
            resident (-1, max_int)
        in
        Hashtbl.remove resident victim
      end;
      Hashtbl.replace resident pid !tick;
      `Miss
    end
  in
  for i = 1 to 2000 do
    (* skew: half the traffic on 6 hot pages, the rest uniform *)
    let page =
      if Prng.int rng 2 = 0 then Prng.int rng 6 else Prng.int rng pages
    in
    let hits0 = Buffer_pool.hits pool in
    ignore (Buffer_pool.read_object pool (Page_id.of_int page) ~slot:0);
    let got = if Buffer_pool.hits pool > hits0 then `Hit else `Miss in
    if got <> model_access page then
      Alcotest.failf "access %d (page %d): pool %s but model %s" i page
        (if got = `Hit then "hit" else "missed")
        (if got = `Hit then "missed" else "hit")
  done;
  Alcotest.(check int)
    "one frame examined per eviction"
    (Buffer_pool.evictions pool)
    (Buffer_pool.eviction_scans pool);
  Alcotest.(check bool) "the trace actually evicted" true
    (Buffer_pool.evictions pool > 100)

(* --- storm parity ---------------------------------------------------- *)

let storm_spec =
  { Gen.default with n_objects = 24; n_steps = 60; p_delegate = 0.25 }

let scripted_storm_cache_parity () =
  let run record_cache =
    Crash_storm.run_script
      ~config:{ Crash_storm.default_config with crash_step = 5; record_cache }
      storm_spec
  in
  let on = run Config.default.Config.record_cache in
  let off = run 0 in
  if not (Crash_storm.ok on) then
    Alcotest.failf "storm failed: %a" Crash_storm.pp_outcome on;
  Alcotest.(check bool) "identical outcomes cache on/off" true (on = off)

let sim_storm_cache_parity () =
  let run record_cache =
    Crash_storm.run_sim
      ~config:{ Crash_storm.default_config with record_cache }
      ~sim:{ Crash_storm.default_sim with steps = 200; crash_every = 9 }
      ()
  in
  let on = run Config.default.Config.record_cache in
  let off = run 0 in
  if not (Crash_storm.ok on) then
    Alcotest.failf "storm failed: %a" Crash_storm.pp_outcome on;
  Alcotest.(check bool) "identical outcomes cache on/off" true (on = off)

let pressure_storm_cache_parity () =
  let run record_cache =
    Pressure_storm.run
      ~config:
        {
          Pressure_storm.default_config with
          steps = 250;
          capacity_bytes = 3000;
          crash_every = 25;
          seed = 5L;
          record_cache;
        }
      ()
  in
  let on = run Config.default.Config.record_cache in
  let off = run 0 in
  if not (Pressure_storm.ok on) then
    Alcotest.failf "storm failed: %a" Pressure_storm.pp_outcome on;
  Alcotest.(check bool) "identical outcomes cache on/off" true (on = off)

(* Group commit moves log forces, so the I/O-indexed fault plan lands
   crashes at different points — outcomes legitimately differ from the
   eager-flush run. The contract is that every oracle still passes:
   commits the restart keeps are exactly the durable commit records. *)
let storms_pass_under_group_commit () =
  let o =
    Crash_storm.run_script
      ~config:
        { Crash_storm.default_config with crash_step = 5; group_commit = 4 }
      storm_spec
  in
  if not (Crash_storm.ok o) then
    Alcotest.failf "scripted storm failed: %a" Crash_storm.pp_outcome o;
  let o =
    Crash_storm.run_sim
      ~config:{ Crash_storm.default_config with group_commit = 4 }
      ~sim:{ Crash_storm.default_sim with steps = 200; crash_every = 9 }
      ()
  in
  if not (Crash_storm.ok o) then
    Alcotest.failf "sim storm failed: %a" Crash_storm.pp_outcome o;
  let o =
    Pressure_storm.run
      ~config:
        {
          Pressure_storm.default_config with
          steps = 250;
          capacity_bytes = 3000;
          crash_every = 25;
          seed = 5L;
          group_commit = 4;
        }
      ()
  in
  if not (Pressure_storm.ok o) then
    Alcotest.failf "pressure storm failed: %a" Pressure_storm.pp_outcome o;
  Alcotest.(check bool) "group-commit storm crashed and recovered" true
    (o.Pressure_storm.recoveries > 0)

(* The eager seed-3 history (once the quarantined crash-atomicity bug,
   fixed by the rewrite system transaction — see test_recovery.ml for
   the live repro) exercises chain surgery under a mid-splice crash.
   The record cache must be invisible to it: the storm passes at any
   cache setting, with identical outcome counters, and writes no
   forensic dump either way. *)
let forensic_dump_bytes_cache_invariant () =
  let storm record_cache dir =
    let config =
      { Crash_storm.default_config with
        seed = 3L;
        crash_step = 39;
        record_cache;
        forensic_dir = Some dir }
    in
    let spec =
      { Gen.default with n_objects = 32; n_steps = 160; p_delegate = 0.2 }
    in
    let o = Crash_storm.run_script ~config ~impl:Config.Eager spec in
    if not (Crash_storm.ok o) then
      Alcotest.failf "seed-3 repro failed (cache=%d): %a" record_cache
        Crash_storm.pp_outcome o;
    let path = Filename.concat dir "FORENSIC_crash_eager_seed3_io39.json" in
    Alcotest.(check bool) "no forensic dump on a passing storm" false
      (Sys.file_exists path);
    Format.asprintf "%a" Crash_storm.pp_outcome o
  in
  let on = storm Config.default.Config.record_cache "perf_parity_cache_on" in
  let off = storm 0 "perf_parity_cache_off" in
  Alcotest.(check string) "storm outcome identical cache on/off" on off

let suite =
  QCheck_alcotest.to_alcotest cache_equivalence
  :: [
       Alcotest.test_case "LRU matches the reference model" `Quick
         lru_matches_reference_model;
       Alcotest.test_case "scripted storm: cache parity" `Quick
         scripted_storm_cache_parity;
       Alcotest.test_case "sim storm: cache parity" `Quick
         sim_storm_cache_parity;
       Alcotest.test_case "pressure storm: cache parity" `Slow
         pressure_storm_cache_parity;
       Alcotest.test_case "storms pass under group commit" `Slow
         storms_pass_under_group_commit;
       Alcotest.test_case "fixed seed-3 repro: cache parity, no dump" `Quick
         forensic_dump_bytes_cache_invariant;
     ]
