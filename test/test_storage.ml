(* Pages, the disk (simulated or file-backed), and the buffer pool's
   STEAL/NO-FORCE + WAL discipline. Disk and pool behaviour must be
   identical on both backends, so every test below runs on each. *)

open Ariesrh_types
open Ariesrh_storage

let pid = Page_id.of_int
let lsn = Lsn.of_int

let page_basics () =
  let p = Page.create ~slots:4 in
  Alcotest.(check int) "slots" 4 (Page.slots p);
  Alcotest.(check int) "initial zero" 0 (Page.get p 2);
  Page.set p 2 99;
  Page.set_page_lsn p (lsn 5);
  Alcotest.(check int) "set/get" 99 (Page.get p 2);
  Alcotest.(check int) "page lsn" 5 (Lsn.to_int (Page.page_lsn p));
  let q = Page.copy p in
  Page.set p 2 1;
  Alcotest.(check int) "copy is independent" 99 (Page.get q 2)

(* Each case gets a fresh disk on the backend under test (a new scratch
   directory per call for the file backend). *)
let mk_disk backend ~pages ~slots_per_page =
  Disk.create ~backend:(backend "storage") ~pages ~slots_per_page ()

let disk_copies backend () =
  let d = mk_disk backend ~pages:2 ~slots_per_page:4 in
  let p = Disk.read_page d (pid 0) in
  Page.set p 0 7;
  Alcotest.(check int) "disk unaffected by mutating a read copy" 0
    (Page.get (Disk.read_page d (pid 0)) 0);
  Disk.write_page d (pid 0) p;
  Page.set p 0 8;
  Alcotest.(check int) "disk stores a copy" 7
    (Page.get (Disk.read_page d (pid 0)) 0);
  Alcotest.(check int) "reads counted" 3 (Disk.stats d).page_reads;
  Alcotest.(check int) "writes counted" 1 (Disk.stats d).page_writes;
  Disk.close d

let pool_eviction_writes_back backend () =
  let d = mk_disk backend ~pages:8 ~slots_per_page:2 in
  let flushed = ref [] in
  let pool =
    Buffer_pool.create ~capacity:2 ~disk:d ~wal_flush:(fun l ->
        flushed := Lsn.to_int l :: !flushed) ()
  in
  Buffer_pool.apply pool (pid 0) ~lsn:(lsn 10) (fun p -> Page.set p 0 1);
  Buffer_pool.apply pool (pid 1) ~lsn:(lsn 11) (fun p -> Page.set p 0 2);
  (* touching a third page forces out the LRU (page 0) *)
  ignore (Buffer_pool.read_object pool (pid 2) ~slot:0);
  Alcotest.(check int) "evicted dirty page hit the disk" 1
    (Page.get (Disk.read_page d (pid 0)) 0);
  Alcotest.(check bool) "WAL rule: log flushed up to page lsn first" true
    (List.mem 10 !flushed);
  Alcotest.(check int) "one eviction" 1 (Buffer_pool.evictions pool);
  Disk.close d

let pool_dirty_page_table backend () =
  let d = mk_disk backend ~pages:4 ~slots_per_page:2 in
  let pool = Buffer_pool.create ~capacity:4 ~disk:d ~wal_flush:(fun _ -> ()) () in
  Buffer_pool.apply pool (pid 1) ~lsn:(lsn 5) (fun p -> Page.set p 0 1);
  Buffer_pool.apply pool (pid 1) ~lsn:(lsn 9) (fun p -> Page.set p 1 2);
  let dpt = Buffer_pool.dirty_page_table pool in
  Alcotest.(check int) "one dirty page" 1 (List.length dpt);
  let _, rec_lsn = List.hd dpt in
  Alcotest.(check int) "recLSN is the first dirtying lsn" 5 (Lsn.to_int rec_lsn);
  Buffer_pool.flush_all pool;
  Alcotest.(check int) "clean after flush_all" 0
    (List.length (Buffer_pool.dirty_page_table pool));
  Disk.close d

let pool_apply_if_newer backend () =
  let d = mk_disk backend ~pages:2 ~slots_per_page:2 in
  let pool = Buffer_pool.create ~capacity:2 ~disk:d ~wal_flush:(fun _ -> ()) () in
  Alcotest.(check bool) "applies on fresh page" true
    (Buffer_pool.apply_if_newer pool (pid 0) ~lsn:(lsn 5) (fun p -> Page.set p 0 1));
  Alcotest.(check bool) "skips older lsn" false
    (Buffer_pool.apply_if_newer pool (pid 0) ~lsn:(lsn 4) (fun p -> Page.set p 0 9));
  Alcotest.(check bool) "skips equal lsn" false
    (Buffer_pool.apply_if_newer pool (pid 0) ~lsn:(lsn 5) (fun p -> Page.set p 0 9));
  Alcotest.(check int) "value from the applied update" 1
    (Buffer_pool.read_object pool (pid 0) ~slot:0);
  Disk.close d

let pool_crash_loses_dirty backend () =
  let d = mk_disk backend ~pages:2 ~slots_per_page:2 in
  let pool = Buffer_pool.create ~capacity:2 ~disk:d ~wal_flush:(fun _ -> ()) () in
  Buffer_pool.apply pool (pid 0) ~lsn:(lsn 3) (fun p -> Page.set p 0 77);
  Buffer_pool.crash pool;
  Alcotest.(check int) "dirty update lost" 0
    (Buffer_pool.read_object pool (pid 0) ~slot:0);
  Disk.close d

let pool_hit_miss_accounting backend () =
  let d = mk_disk backend ~pages:4 ~slots_per_page:2 in
  let pool = Buffer_pool.create ~capacity:2 ~disk:d ~wal_flush:(fun _ -> ()) () in
  ignore (Buffer_pool.read_object pool (pid 0) ~slot:0);
  ignore (Buffer_pool.read_object pool (pid 0) ~slot:1);
  ignore (Buffer_pool.read_object pool (pid 1) ~slot:0);
  Alcotest.(check int) "misses" 2 (Buffer_pool.misses pool);
  Alcotest.(check int) "hits" 1 (Buffer_pool.hits pool);
  Disk.close d

let suite =
  Alcotest.test_case "page basics" `Quick page_basics
  :: List.concat_map
       (fun (bname, backend) ->
         List.map
           (fun (name, f) ->
             Alcotest.test_case
               (Printf.sprintf "%s [%s]" name bname)
               `Quick (f backend))
           [
             ("disk copies", disk_copies);
             ("pool eviction writes back (STEAL + WAL)",
              pool_eviction_writes_back);
             ("pool dirty page table", pool_dirty_page_table);
             ("pool apply_if_newer (redo test)", pool_apply_if_newer);
             ("pool crash loses dirty pages", pool_crash_loses_dirty);
             ("pool hit/miss accounting", pool_hit_miss_accounting);
           ])
       Test_backend.backends
