(* The ariesrh command-line tool: figure reproductions, workload runs,
   and engine comparisons. *)

open Cmdliner
open Ariesrh_core
open Ariesrh_workload

let impl_conv =
  let parse = function
    | "rh" -> Ok Config.Rh
    | "eager" -> Ok Config.Eager
    | "lazy" -> Ok Config.Lazy
    | s -> Error (`Msg (Printf.sprintf "unknown engine %S (rh|eager|lazy)" s))
  in
  let print ppf = function
    | Config.Rh -> Format.pp_print_string ppf "rh"
    | Config.Eager -> Format.pp_print_string ppf "eager"
    | Config.Lazy -> Format.pp_print_string ppf "lazy"
  in
  Arg.conv (parse, print)

(* --- observability plumbing shared by every subcommand --- *)

module Obs = Ariesrh_obs

type obs = { metrics_json : string option }

(* every database the command creates registers here (via the Db create
   hook), so the final metrics export aggregates across all of them —
   a storm builds a fresh db per crash point *)
let registries : Obs.Metrics.t list ref = ref []

let verbosity_conv =
  let parse s =
    match Logs.level_of_string s with
    | Ok l -> Ok l
    | Error (`Msg m) -> Error (`Msg m)
  in
  let print ppf l = Format.pp_print_string ppf (Logs.level_to_string l) in
  Arg.conv (parse, print)

let verbosity_arg =
  Arg.(
    value
    & opt (some verbosity_conv) None
    & info [ "verbosity" ] ~docv:"LEVEL"
        ~doc:
          "Engine trace verbosity: quiet, error, warning, info or debug. \
           Installs a Logs reporter over the unified ariesrh source \
           (Ariesrh_obs.Trace).")

let metrics_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-json" ] ~docv:"FILE"
        ~doc:
          "On exit, write an aggregated metrics snapshot of every database \
           the command created to $(docv) (deterministic JSON; counters and \
           histograms sum across databases).")

let obs_setup verbosity metrics_json =
  (match verbosity with
  | None -> ()
  | Some level ->
      Logs.set_reporter (Logs.format_reporter ());
      Obs.Trace.set_level level);
  registries := [];
  Db.set_create_hook
    (Some (fun db -> registries := Db.metrics db :: !registries));
  { metrics_json }

let obs_term = Term.(const obs_setup $ verbosity_arg $ metrics_json_arg)

(* --- storage backend selection shared by every subcommand --- *)

module Backend = Ariesrh_storage.Backend

(* [root] is the directory the file backend lives under ([None] = sim).
   Installed as a [Db] backend factory so every database the command
   creates — including those built deep inside figures or storms —
   lands in its own fresh subdirectory of [root]. *)
type backend_sel = { backend_kind : string; backend_root : string option }

let backend_kind_arg =
  Arg.(
    value
    & opt (enum [ ("sim", `Sim); ("file", `File) ]) `Sim
    & info [ "backend" ] ~docv:"KIND"
        ~doc:
          "Storage backend: $(b,sim) (in-memory simulated devices, the \
           default) or $(b,file) (real files: segmented checksummed WAL \
           with fsync on force, doublewrite-style page file).")

let backend_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "backend-dir" ] ~docv:"DIR"
        ~doc:
          "Directory root for $(b,--backend file) (created if missing). \
           Default: a fresh directory under the system temp dir.")

let backend_setup kind dir =
  match kind with
  | `Sim ->
      Db.set_backend_factory None;
      { backend_kind = "sim"; backend_root = None }
  | `File ->
      let root =
        match dir with
        | Some d -> d
        | None ->
            Filename.concat
              (Filename.get_temp_dir_name ())
              (Printf.sprintf "ariesrh-%d" (Unix.getpid ()))
      in
      Backend.mkdir_p root;
      let n = ref 0 in
      Db.set_backend_factory
        (Some
           (fun () ->
             incr n;
             let dir = Filename.concat root (Printf.sprintf "db%d" !n) in
             Backend.remove_tree dir;
             Backend.File { dir }));
      Format.eprintf "file backend root: %s@." root;
      { backend_kind = "file"; backend_root = Some root }

let backend_term = Term.(const backend_setup $ backend_kind_arg $ backend_dir_arg)

(* call before any [exit]: cmdliner bodies that fail with [exit 1] must
   still flush the metrics export *)
let finish obs =
  match obs.metrics_json with
  | None -> ()
  | Some file ->
      let snaps = List.rev_map Obs.Metrics.snapshot !registries in
      Obs.Json.to_file file (Obs.Metrics.to_json (Obs.Metrics.merge snaps));
      Format.eprintf "metrics: %d registries merged into %s@."
        (List.length snaps) file

(* --- figures --- *)

let figures_cmd =
  let which =
    Arg.(value & pos 0 string "all" & info [] ~docv:"FIGURE"
           ~doc:"Which figure to reproduce: f1 f2 f3 f4 f5 f7 f8 or all.")
  in
  let run obs (_ : backend_sel) which =
    Figures.run which;
    finish obs
  in
  Cmd.v
    (Cmd.info "figures"
       ~doc:"Reproduce the paper's figures as executable, checked artifacts")
    Term.(const run $ obs_term $ backend_term $ which)

(* --- run --- *)

let spec_of ~objects ~steps ~delegation_rate =
  let d = delegation_rate in
  {
    Gen.default with
    n_objects = objects;
    n_steps = steps;
    p_delegate = d;
  }

let run_cmd =
  let steps =
    Arg.(value & opt int 500 & info [ "steps" ] ~doc:"Workload steps.")
  in
  let objects =
    Arg.(value & opt int 128 & info [ "objects" ] ~doc:"Number of objects.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload seed.")
  in
  let rate =
    Arg.(value & opt float 0.12
         & info [ "delegation-rate" ] ~doc:"Delegation weight in the mix.")
  in
  let impl =
    Arg.(value & opt impl_conv Config.Rh
         & info [ "engine" ] ~doc:"Engine: rh, eager, or lazy.")
  in
  let crash_frac =
    Arg.(value & opt float 0.8
         & info [ "crash-frac" ]
             ~doc:"Crash after this fraction of the workload (0..1).")
  in
  let dump =
    Arg.(value & flag & info [ "dump-log" ] ~doc:"Print the durable log.")
  in
  let save =
    Arg.(value & opt (some string) None
         & info [ "save-script" ] ~docv:"FILE"
             ~doc:"Write the generated workload script to a file.")
  in
  let load =
    Arg.(value & opt (some string) None
         & info [ "script" ] ~docv:"FILE"
             ~doc:"Replay a saved script instead of generating one.")
  in
  let recover_mode =
    Arg.(value
         & opt (enum [ ("offline", Config.Offline);
                       ("on-demand", Config.On_demand) ])
             Config.Offline
         & info [ "recover-mode" ] ~docv:"MODE"
             ~doc:"Restart discipline after the crash: $(b,offline) replays \
                   redo and undo before serving anything; $(b,on-demand) \
                   runs analysis only, opens immediately, and drains the \
                   backlog afterwards (shown separately).")
  in
  let run obs (_ : backend_sel) steps objects seed rate impl crash_frac dump
      save load recover_mode =
    let script =
      match load with
      | Some file ->
          let ic = open_in file in
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          (match Script.of_string s with
          | Ok sc -> sc
          | Error e -> failwith ("bad script file: " ^ e))
      | None ->
          let spec = spec_of ~objects ~steps ~delegation_rate:rate in
          Gen.generate spec ~seed:(Int64.of_int seed)
    in
    (match save with
    | Some file ->
        let oc = open_out file in
        output_string oc (Script.to_string script);
        close_out oc;
        Format.printf "script saved to %s@." file
    | None -> ());
    let n = List.length script in
    let at = min n (int_of_float (crash_frac *. float_of_int n)) in
    Format.printf "workload: %s@." (Script.stats script);
    let db =
      Driver.fresh_db ~impl ~recovery_mode:recover_mode ~n_objects:objects ()
    in
    Driver.run ~upto:at db script;
    Db.crash db;
    Format.printf "crash after %d/%d actions@." at n;
    if dump then begin
      let log = Db.log_store db in
      Ariesrh_wal.Log_store.iter_forward log ~from:Ariesrh_types.Lsn.first
        (fun lsn r ->
          Format.printf "  %4d  %a@."
            (Ariesrh_types.Lsn.to_int lsn)
            Ariesrh_wal.Record.pp r)
    end;
    let t0 = Unix.gettimeofday () in
    let report = Db.recover db in
    let dt = Unix.gettimeofday () -. t0 in
    Format.printf "recovery (%0.3f ms):@.%a@." (1000. *. dt)
      Ariesrh_recovery.Report.pp report;
    if Db.recovering db then begin
      Format.printf
        "open for traffic with restart backlog %d; draining in the \
         background...@."
        (Db.recovery_backlog db);
      let t1 = Unix.gettimeofday () in
      Db.await_recovery db;
      Format.printf "backlog drained (%0.3f ms).@."
        (1000. *. (Unix.gettimeofday () -. t1))
    end;
    (* cross-check against the oracle *)
    let expected = Oracle.expected ~n_objects:objects ~crash_at:at script in
    if Db.peek_all db = expected then
      Format.printf "state matches the semantic oracle.@."
    else Format.printf "STATE MISMATCH against the oracle!@.";
    (* and against the formal model, when the log has no rewriting *)
    if impl = Config.Rh then begin
      let h = Ariesrh_model.History.of_log (Db.log_store db) in
      (match Ariesrh_model.History.check_well_formed h with
      | Ok () -> Format.printf "history is well-formed (section 2.1.2).@."
      | Error e -> Format.printf "HISTORY NOT WELL-FORMED: %s@." e);
      match Ariesrh_model.History.check_recovery h with
      | Ok () ->
          Format.printf "log satisfies the undo/redo obligations (4.1).@."
      | Error e -> Format.printf "RECOVERY OBLIGATION VIOLATED: %s@." e
    end;
    finish obs
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run a random workload, crash, recover, verify against the oracle")
    Term.(
      const run $ obs_term $ backend_term $ steps $ objects $ seed $ rate
      $ impl $ crash_frac $ dump $ save $ load $ recover_mode)

(* --- compare --- *)

let compare_cmd =
  let steps =
    Arg.(value & opt int 2000 & info [ "steps" ] ~doc:"Workload steps.")
  in
  let objects =
    Arg.(value & opt int 256 & info [ "objects" ] ~doc:"Number of objects.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload seed.") in
  let rate =
    Arg.(value & opt float 0.12
         & info [ "delegation-rate" ] ~doc:"Delegation weight in the mix.")
  in
  let run obs (_ : backend_sel) steps objects seed rate =
    let spec =
      { (spec_of ~objects ~steps ~delegation_rate:rate) with p_checkpoint = 0.0 }
    in
    let script = Gen.generate spec ~seed:(Int64.of_int seed) in
    let n = List.length script in
    let at = max 1 (n * 4 / 5) in
    Format.printf "workload: %s; crash at %d/%d@.@." (Script.stats script) at n;
    Format.printf "%-6s | %14s %10s %9s | %10s %9s %9s %9s %9s@." "engine"
      "np_rewrites" "np_seeks" "np(ms)" "rec(ms)" "fwd_recs" "bwd_exam"
      "undos" "rec_seeks";
    List.iter
      (fun (name, impl) ->
        let db = Driver.fresh_db ~impl ~n_objects:objects () in
        let stats = Ariesrh_wal.Log_store.stats (Db.log_store db) in
        let t0 = Unix.gettimeofday () in
        Driver.run ~upto:at db script;
        let np_ms = 1000. *. (Unix.gettimeofday () -. t0) in
        let np = Ariesrh_wal.Log_stats.copy stats in
        Db.crash db;
        let t0 = Unix.gettimeofday () in
        let r = Db.recover db in
        let dt = 1000. *. (Unix.gettimeofday () -. t0) in
        Format.printf "%-6s | %14d %10d %9.2f | %10.2f %9d %9d %9d %9d@." name
          np.rewrites np.random_seeks np_ms dt r.forward_records
          r.backward_examined r.undos r.log_io.random_seeks)
      [ ("rh", Config.Rh); ("lazy", Config.Lazy); ("eager", Config.Eager) ];
    finish obs
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Recover the same crashed workload under rh, lazy, and eager")
    Term.(const run $ obs_term $ backend_term $ steps $ objects $ seed $ rate)

(* --- time travel: history / asof / explain / lineage --- *)

module Temporal = Ariesrh_temporal.Temporal
module Lsn = Ariesrh_types.Lsn
module Xid = Ariesrh_types.Xid
module Oid = Ariesrh_types.Oid

(* Shared workload builder for the time-travel subcommands: generate a
   script, run it on a fresh database (the selected backend applies),
   and — when [crash_frac > 0] — crash partway and recover, so the
   queries run over a log that restart has already rewritten (lazy
   splice, eager surgery rollback). *)
let temporal_db ~impl ~objects ~steps ~rate ~seed ~crash_frac ~tracing () =
  let spec = spec_of ~objects ~steps ~delegation_rate:rate in
  let script = Gen.generate spec ~seed:(Int64.of_int seed) in
  let db = Driver.fresh_db ~impl ~tracing ~n_objects:objects () in
  (if crash_frac > 0. then begin
     let n = List.length script in
     let at = min n (int_of_float (crash_frac *. float_of_int n)) in
     Driver.run ~upto:at db script;
     Db.crash db;
     ignore (Db.recover db)
   end
   else Driver.run db script);
  db

let tt_steps =
  Arg.(value & opt int 300 & info [ "steps" ] ~doc:"Workload steps.")

let tt_objects =
  Arg.(value & opt int 32 & info [ "objects" ] ~doc:"Number of objects.")

let tt_seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload seed.")

let tt_rate =
  Arg.(value & opt float 0.25
       & info [ "delegation-rate" ] ~doc:"Delegation weight in the mix.")

let tt_impl =
  Arg.(value & opt impl_conv Config.Rh
       & info [ "engine" ] ~doc:"Engine: rh, eager, or lazy.")

let tt_crash =
  Arg.(value & opt float 0.
       & info [ "crash-frac" ]
           ~doc:"Crash after this fraction of the workload and recover \
                 before querying, so the log has been rewritten by \
                 restart (0 = run to completion).")

(* deterministic-JSON error envelope shared by the temporal queries:
   typed refusals print a machine-readable object and exit 1 *)
let tt_guard obs f =
  match f () with
  | () -> finish obs
  | exception Errors.History_unavailable { lsn; available_from; available_upto }
    ->
      print_endline
        (Obs.Json.to_string
           (Obs.Json.Obj
              [ ("error", Obs.Json.String "history_unavailable");
                ("lsn", Obs.Json.Int (Lsn.to_int lsn));
                ("available_from", Obs.Json.Int (Lsn.to_int available_from));
                ("available_upto", Obs.Json.Int (Lsn.to_int available_upto)) ]));
      finish obs;
      exit 1
  | exception Errors.No_such_txn x ->
      print_endline
        (Obs.Json.to_string
           (Obs.Json.Obj
              [ ("error", Obs.Json.String "no_such_txn");
                ("xid", Obs.Json.Int (Xid.to_int x)) ]));
      finish obs;
      exit 1

let history_cmd =
  let ob = Arg.(required & pos 0 (some int) None & info [] ~docv:"OBJECT") in
  let upto =
    Arg.(value & opt (some int) None
         & info [ "upto" ] ~docv:"LSN"
             ~doc:"Bound the chain at this LSN (default: the durable \
                   horizon).")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the chain as deterministic JSON.")
  in
  let run obs (_ : backend_sel) ob steps objects seed rate impl crash_frac
      upto json =
    tt_guard obs @@ fun () ->
    let db =
      temporal_db ~impl ~objects ~steps ~rate ~seed ~crash_frac
        ~tracing:false ()
    in
    let oid = Oid.of_int ob in
    let upto =
      match upto with
      | Some l -> Lsn.of_int l
      | None -> (Temporal.coverage db).Temporal.upto
    in
    let versions = Temporal.history db ~upto oid in
    if json then
      print_endline
        (Obs.Json.to_string (Temporal.history_to_json ~oid ~upto versions))
    else begin
      Format.printf "history of ob%d as of LSN %d (%d versions):@.@." ob
        (Lsn.to_int upto) (List.length versions);
      List.iter
        (fun (v : Temporal.version) ->
          Format.printf "  %4d  %s by %a" (Lsn.to_int v.v_lsn)
            (match v.v_op with
            | Ariesrh_wal.Record.Set { before; after } ->
                Printf.sprintf "set %d->%d" before after
            | Ariesrh_wal.Record.Add d -> Printf.sprintf "add %+d" d)
            Xid.pp v.v_writer;
          if not (Xid.equal v.v_provenance v.v_writer) then
            Format.printf " (invoked by %a, rewritten in place)" Xid.pp
              v.v_provenance;
          if not (Xid.equal v.v_holder v.v_provenance) then
            Format.printf " -> answered by %a" Xid.pp v.v_holder;
          List.iter
            (fun (t : Temporal.transfer) ->
              Format.printf "@.        delegated %a -> %a at %d%s" Xid.pp
                t.t_from Xid.pp t.t_to (Lsn.to_int t.t_at)
                (if t.t_op_level then " (operation)" else ""))
            v.v_transfers;
          List.iter
            (fun (s : Temporal.surgery) ->
              Format.printf "@.        surgery at %d (intent %d, %s)"
                (Lsn.to_int s.s_clr) (Lsn.to_int s.s_intent)
                (if s.s_committed then "committed" else "rolled back"))
            v.v_surgeries;
          Format.printf "  [%s]@." (Temporal.status_str v.v_status))
        versions
    end
  in
  Cmd.v
    (Cmd.info "history"
       ~doc:"Reconstruct an object's full version chain from the durable \
             log: physical writer, original invoker (recovered from \
             surgery before-images), responsible party, delegations, \
             rewrite surgeries, and commit status")
    Term.(
      const run $ obs_term $ backend_term $ ob $ tt_steps $ tt_objects
      $ tt_seed $ tt_rate $ tt_impl $ tt_crash $ upto $ json)

let asof_cmd =
  let lsn =
    Arg.(required & opt (some int) None
         & info [ "lsn" ] ~docv:"LSN" ~doc:"The LSN to read as of.")
  in
  let ob =
    Arg.(value & pos 0 (some int) None
         & info [] ~docv:"OBJECT"
             ~doc:"Object to read; omit for a full snapshot.")
  in
  let run obs (_ : backend_sel) lsn ob steps objects seed rate impl
      crash_frac =
    tt_guard obs @@ fun () ->
    let db =
      temporal_db ~impl ~objects ~steps ~rate ~seed ~crash_frac
        ~tracing:false ()
    in
    let l = Lsn.of_int lsn in
    let cov = Temporal.coverage db in
    let body =
      match ob with
      | Some o ->
          [ ("object", Obs.Json.Int o);
            ("value", Obs.Json.Int (Temporal.as_of db ~lsn:l (Oid.of_int o)))
          ]
      | None ->
          [ ("snapshot",
             Obs.Json.List
               (Array.to_list
                  (Array.map
                     (fun v -> Obs.Json.Int v)
                     (Temporal.snapshot_at db l)))) ]
    in
    print_endline
      (Obs.Json.to_string
         (Obs.Json.Obj
            (( "lsn", Obs.Json.Int lsn )
             :: ("coverage", Temporal.coverage_to_json cov)
             :: body)))
  in
  Cmd.v
    (Cmd.info "asof"
       ~doc:"Read the committed value of an object (or a full snapshot) \
             at an arbitrary LSN, reconstructed from the durable log and \
             the attached archive; refuses with a typed error when the \
             truncated prefix is not bridged")
    Term.(
      const run $ obs_term $ backend_term $ lsn $ ob $ tt_steps $ tt_objects
      $ tt_seed $ tt_rate $ tt_impl $ tt_crash)

let explain_cmd =
  let xid =
    Arg.(required & pos 0 (some int) None
         & info [] ~docv:"XID" ~doc:"Engine transaction id to reenact.")
  in
  let run obs (_ : backend_sel) xid steps objects seed rate impl crash_frac =
    tt_guard obs @@ fun () ->
    let db =
      temporal_db ~impl ~objects ~steps ~rate ~seed ~crash_frac
        ~tracing:false ()
    in
    print_endline
      (Obs.Json.to_string
         (Temporal.explain_to_json (Temporal.explain db (Xid.of_int xid))))
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Reenact one transaction over the as_of snapshot at its begin \
             LSN and report where provenance (who performed each \
             operation) and attribution (who history now holds \
             responsible) diverge after delegation and rewriting")
    Term.(
      const run $ obs_term $ backend_term $ xid $ tt_steps $ tt_objects
      $ tt_seed $ tt_rate $ tt_impl $ tt_crash)

let lineage_cmd =
  let lsn =
    Arg.(required & opt (some int) None
         & info [ "lsn" ] ~docv:"LSN"
             ~doc:"LSN of the update to trace responsibility for.")
  in
  let as_of =
    Arg.(value & opt (some int) None
         & info [ "as-of" ] ~docv:"SEQ"
             ~doc:"Exclusive trace-ring sequence bound: answer as of \
                   this observation step (default: everything emitted).")
  in
  let run obs (_ : backend_sel) lsn as_of steps objects seed rate impl
      crash_frac =
    tt_guard obs @@ fun () ->
    let db =
      temporal_db ~impl ~objects ~steps ~rate ~seed ~crash_frac
        ~tracing:true ()
    in
    let answer =
      match Obs.Lineage.query (Db.ring db) ~lsn:(Lsn.of_int lsn) ?as_of ()
      with
      | Some t -> Obs.Lineage.to_json t
      | None -> Obs.Json.Null
    in
    print_endline
      (Obs.Json.to_string
         (Obs.Json.Obj
            [ ("lsn", Obs.Json.Int lsn); ("lineage", answer) ]))
  in
  Cmd.v
    (Cmd.info "lineage"
       ~doc:"Query the structured trace ring for who is responsible for \
             the update at an LSN (Obs.Lineage), as deterministic JSON; \
             lineage is null when the ring no longer retains the events")
    Term.(
      const run $ obs_term $ backend_term $ lsn $ as_of $ tt_steps
      $ tt_objects $ tt_seed $ tt_rate $ tt_impl $ tt_crash)

(* --- sim --- *)

let sim_cmd =
  let clients =
    Arg.(value & opt int 8 & info [ "clients" ] ~doc:"Concurrent clients.")
  in
  let txns =
    Arg.(value & opt int 100 & info [ "txns" ] ~doc:"Transactions per client.")
  in
  let objects =
    Arg.(value & opt int 16 & info [ "objects" ] ~doc:"Objects to contend on.")
  in
  let rate =
    Arg.(value & opt float 0.2
         & info [ "delegation-rate" ] ~doc:"Probability a txn ends by \
                                            delegating its work.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Seed.") in
  let run obs (_ : backend_sel) clients txns objects rate seed =
    let db =
      Db.create (Config.make ~n_objects:(max 32 objects) ~buffer_capacity:32 ())
    in
    let o =
      Sim.run ~clients ~txns_per_client:txns ~n_objects:objects
        ~delegation_rate:rate ~seed:(Int64.of_int seed) db
    in
    Format.printf
      "committed=%d waits=%d deadlocks=%d victims=%d delegations=%d@."
      o.committed o.waits o.deadlocks o.aborted o.delegations;
    Format.printf "state %s the committed-increment sums@."
      (if o.state_ok then "matches" else "DOES NOT MATCH");
    finish obs
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:"Closed-loop contention simulator with deadlock detection")
    Term.(const run $ obs_term $ backend_term $ clients $ txns $ objects
          $ rate $ seed)

(* --- crash-storm --- *)

let storm_cmd =
  let steps =
    Arg.(value & opt int 160
         & info [ "steps" ] ~doc:"Scripted workload steps per storm.")
  in
  let objects =
    Arg.(value & opt int 32 & info [ "objects" ] ~doc:"Number of objects.")
  in
  let seeds =
    Arg.(value & opt int 4
         & info [ "seeds" ] ~doc:"Number of scripted storms (distinct seeds).")
  in
  let seed0 =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"First storm seed.")
  in
  let rate =
    Arg.(value & opt float 0.2
         & info [ "delegation-rate" ] ~doc:"Delegation weight in the mix.")
  in
  let impl =
    Arg.(value & opt impl_conv Config.Rh
         & info [ "engine" ] ~doc:"Engine: rh, eager, or lazy.")
  in
  let depth =
    Arg.(value & opt int 2
         & info [ "depth" ] ~doc:"Nested crash-during-recovery levels.")
  in
  let crash_step =
    Arg.(value & opt int 1
         & info [ "crash-step" ]
             ~doc:"Scripted: escalate the crash I/O point by this much.")
  in
  let sim_steps =
    Arg.(value & opt int 1200
         & info [ "sim-steps" ] ~doc:"Simulated storm scheduler steps.")
  in
  let clients =
    Arg.(value & opt int 4
         & info [ "clients" ] ~doc:"Simulated storm concurrent clients.")
  in
  let group_commit =
    Arg.(value & opt int 0
         & info [ "group-commit" ]
             ~doc:"Batch commit log forces in groups of this size (0 = force \
                   each commit).")
  in
  let record_cache =
    Arg.(value & opt int Config.default.Config.record_cache
         & info [ "record-cache" ]
             ~doc:"Decoded-record cache capacity (0 = disable).")
  in
  let audit =
    Arg.(value & opt bool true
         & info [ "audit" ]
             ~doc:"Run the restart self-audit after every recovery (chain \
                   closure, CLR targets, surgery bracketing); violations \
                   fail the storm.")
  in
  let forensic_dir =
    Arg.(value & opt string "."
         & info [ "forensic-dir" ] ~docv:"DIR"
             ~doc:"Directory for forensic failure dumps (event trail, \
                   per-mismatch lineage, metrics); $(b,none) disables them.")
  in
  let time_travel =
    Arg.(value & opt bool true
         & info [ "time-travel" ]
             ~doc:"Run concurrent analytic time-travel readers: \
                   Temporal.snapshot_at at sampled durable commit LSNs \
                   must equal the oracle's expected state at that point.")
  in
  let external_ =
    Arg.(value & flag
         & info [ "external" ]
             ~doc:"Kill -9 storm: fork the workload as a child process, \
                   SIGKILL it at each scheduled I/O point, reopen the \
                   database files in the parent and verify recovery \
                   against the oracle. Requires $(b,--backend file).")
  in
  let max_kills =
    Arg.(value & opt int 0
         & info [ "max-kills" ]
             ~doc:"External storm: bound the scheduled kill points per \
                   seed (0 = sweep until the script survives a run).")
  in
  let shards =
    Arg.(value & opt int 1
         & info [ "shards" ]
             ~doc:"Run the storm on a sharded engine with this many \
                   shards (cross-shard migrations under the same crash \
                   schedule, cross-shard transfer audit on recovery); 1 \
                   keeps the plain single-database storm.")
  in
  let run obs sel steps objects seeds seed0 rate impl depth crash_step
      sim_steps clients group_commit record_cache audit time_travel
      forensic_dir external_ max_kills shards =
    let forensic_dir = if forensic_dir = "none" then None else Some forensic_dir in
    let spec = spec_of ~objects ~steps ~delegation_rate:rate in
    let total = ref None in
    let add label o =
      Format.printf "%s:@.  %a@." label Crash_storm.pp_outcome o;
      total := Some (match !total with None -> o | Some t -> Crash_storm.merge t o)
    in
    if external_ then begin
      if shards > 1 then begin
        Format.eprintf "crash-storm --external does not take --shards yet@.";
        exit 2
      end;
      let root =
        match sel.backend_root with
        | Some r -> r
        | None ->
            Format.eprintf "crash-storm --external requires --backend file@.";
            exit 2
      in
      for i = 0 to seeds - 1 do
        let config =
          { Supervisor.default_config with
            seed = Int64.of_int (seed0 + i);
            kill_step = max 1 crash_step;
            max_kills = (if max_kills <= 0 then max_int else max_kills);
            group_commit;
            record_cache;
            audit;
            root =
              Filename.concat root
                (Printf.sprintf "external-seed%d" (seed0 + i));
            forensic_dir }
        in
        add
          (Printf.sprintf "external kill -9 storm (seed %d)" (seed0 + i))
          (Supervisor.run ~config ~impl spec)
      done
    end
    else begin
      let base =
        { Crash_storm.default_config with
          recovery_crash_depth = depth;
          crash_step = max 1 crash_step;
          group_commit;
          record_cache;
          audit;
          time_travel;
          forensic_dir;
          backend_root = sel.backend_root;
          shards = max 1 shards }
      in
      for i = 0 to seeds - 1 do
        let config = { base with seed = Int64.of_int (seed0 + i) } in
        add
          (Printf.sprintf "scripted storm (seed %d)" (seed0 + i))
          (Crash_storm.run_script ~config ~impl spec)
      done;
      if sim_steps > 0 then begin
        let sim =
          { Crash_storm.default_sim with steps = sim_steps; clients }
        in
        add "simulated storm"
          (Crash_storm.run_sim ~config:{ base with seed = Int64.of_int seed0 }
             ~sim ())
      end
    end;
    match !total with
    | None -> finish obs
    | Some t ->
        Format.printf "@.total:@.  %a@." Crash_storm.pp_outcome t;
        finish obs;
        if not (Crash_storm.ok t) then exit 1
  in
  Cmd.v
    (Cmd.info "crash-storm"
       ~doc:"Crash at every I/O point, re-crash during recovery, tear pages \
             and log tails; verify every restart against the oracle")
    Term.(
      const run $ obs_term $ backend_term $ steps $ objects $ seeds $ seed0
      $ rate $ impl $ depth $ crash_step $ sim_steps $ clients $ group_commit
      $ record_cache $ audit $ time_travel $ forensic_dir $ external_
      $ max_kills $ shards)

(* --- recovery-storm --- *)

let recovery_storm_cmd =
  let steps =
    Arg.(value & opt int 120
         & info [ "steps" ] ~doc:"Scripted workload steps per storm.")
  in
  let objects =
    Arg.(value & opt int 24 & info [ "objects" ] ~doc:"Number of objects.")
  in
  let seeds =
    Arg.(value & opt int 3
         & info [ "seeds" ] ~doc:"Number of storms (distinct seeds).")
  in
  let seed0 =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"First storm seed.")
  in
  let rate =
    Arg.(value & opt float 0.2
         & info [ "delegation-rate" ] ~doc:"Delegation weight in the mix.")
  in
  let impl =
    Arg.(value & opt impl_conv Config.Rh
         & info [ "engine" ] ~doc:"Engine: rh, eager, or lazy.")
  in
  let depth =
    Arg.(value & opt int 2
         & info [ "depth" ]
             ~doc:"Nested crash levels injected during analysis, sweeper \
                   steps, and foreground repairs.")
  in
  let crash_step =
    Arg.(value & opt int 1
         & info [ "crash-step" ]
             ~doc:"Escalate the crash I/O point by this much.")
  in
  let group_commit =
    Arg.(value & opt int 0
         & info [ "group-commit" ]
             ~doc:"Batch commit log forces in groups of this size (0 = force \
                   each commit).")
  in
  let record_cache =
    Arg.(value & opt int Config.default.Config.record_cache
         & info [ "record-cache" ]
             ~doc:"Decoded-record cache capacity (0 = disable).")
  in
  let audit =
    Arg.(value & opt bool true
         & info [ "audit" ]
             ~doc:"Run the restart self-audit after every drained recovery; \
                   violations fail the storm.")
  in
  let shards =
    Arg.(value & opt int 1
         & info [ "shards" ]
             ~doc:"Run the storm on a sharded engine with this many shards: \
                   per-shard analysis (the partitioned forward pass), \
                   incremental availability per shard, probes routed to \
                   each object's home; 1 keeps the plain storm.")
  in
  let run obs sel steps objects seeds seed0 rate impl depth crash_step
      group_commit record_cache audit shards =
    let spec = spec_of ~objects ~steps ~delegation_rate:rate in
    let base =
      { Recovery_storm.default_config with
        Crash_storm.recovery_crash_depth = depth;
        crash_step = max 1 crash_step;
        group_commit;
        record_cache;
        audit;
        backend_root = sel.backend_root;
        shards = max 1 shards }
    in
    let total = ref None in
    for i = 0 to seeds - 1 do
      let config = { base with Crash_storm.seed = Int64.of_int (seed0 + i) } in
      let o = Recovery_storm.run_script ~config ~impl spec in
      Format.printf "recovery storm (seed %d):@.  %a@." (seed0 + i)
        Recovery_storm.pp_outcome o;
      total :=
        Some (match !total with None -> o | Some t -> Recovery_storm.merge t o)
    done;
    match !total with
    | None -> finish obs
    | Some t ->
        Format.printf "@.total:@.  %a@." Recovery_storm.pp_outcome t;
        finish obs;
        if not (Recovery_storm.ok t) then exit 1
  in
  Cmd.v
    (Cmd.info "recovery-storm"
       ~doc:"Crash at every I/O point, restart on-demand (analysis only, \
             open immediately), re-crash while the sweeper and foreground \
             repairs race, and verify the drained state against the oracle \
             and an offline twin")
    Term.(
      const run $ obs_term $ backend_term $ steps $ objects $ seeds $ seed0
      $ rate $ impl $ depth $ crash_step $ group_commit $ record_cache
      $ audit $ shards)

(* --- pressure-storm --- *)

let pressure_storm_cmd =
  let seeds =
    Arg.(value & opt int 3
         & info [ "seeds" ] ~doc:"Number of storms (distinct seeds).")
  in
  let seed0 =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"First storm seed.")
  in
  let steps =
    Arg.(value & opt int 800 & info [ "steps" ] ~doc:"Scheduler steps.")
  in
  let clients =
    Arg.(value & opt int 4 & info [ "clients" ] ~doc:"Concurrent clients.")
  in
  let capacity =
    Arg.(value & opt int 6144
         & info [ "capacity" ] ~doc:"Log byte budget (the tight part).")
  in
  let crash_every =
    Arg.(value & opt int 40
         & info [ "crash-every" ]
             ~doc:"I/Os between injected crashes (0 = none).")
  in
  let depth =
    Arg.(value & opt int 1
         & info [ "depth" ] ~doc:"Nested crash-during-recovery levels.")
  in
  let rate =
    Arg.(value & opt float 0.25
         & info [ "delegation-rate" ] ~doc:"Delegation weight in the mix.")
  in
  let impl =
    Arg.(value & opt (some impl_conv) None
         & info [ "engine" ]
             ~doc:"Engine: rh, eager, or lazy. Default: all three.")
  in
  let group_commit =
    Arg.(value & opt int 0
         & info [ "group-commit" ]
             ~doc:"Batch commit log forces in groups of this size (0 = force \
                   each commit).")
  in
  let record_cache =
    Arg.(value & opt int Config.default.Config.record_cache
         & info [ "record-cache" ]
             ~doc:"Decoded-record cache capacity (0 = disable).")
  in
  let audit =
    Arg.(value & opt bool true
         & info [ "audit" ]
             ~doc:"Run the restart self-audit after every recovery (chain \
                   closure, CLR targets, surgery bracketing); violations \
                   fail the storm.")
  in
  let time_travel =
    Arg.(value & opt bool true
         & info [ "time-travel" ]
             ~doc:"Run analytic time-travel readers in every check round: \
                   exact ledger match while history is intact, typed \
                   History_unavailable refusal once the governor \
                   truncates.")
  in
  let forensic_dir =
    Arg.(value & opt string "."
         & info [ "forensic-dir" ] ~docv:"DIR"
             ~doc:"Directory for forensic failure dumps (event trail, \
                   per-mismatch lineage, metrics); $(b,none) disables them.")
  in
  let run obs sel seeds seed0 steps clients capacity crash_every depth rate
      impl group_commit record_cache audit time_travel forensic_dir =
    let engines =
      match impl with
      | Some i -> [ i ]
      | None -> [ Config.Rh; Config.Lazy; Config.Eager ]
    in
    let failed = ref false in
    List.iter
      (fun impl ->
        for i = 0 to seeds - 1 do
          let config =
            { Pressure_storm.default_config with
              seed = Int64.of_int (seed0 + i);
              impl;
              steps;
              clients;
              capacity_bytes = capacity;
              crash_every;
              recovery_crash_depth = depth;
              p_delegate = rate;
              group_commit;
              record_cache;
              audit;
              time_travel;
              forensic_dir =
                (if forensic_dir = "none" then None else Some forensic_dir);
              backend_root = sel.backend_root }
          in
          let o = Pressure_storm.run ~config () in
          Format.printf "%s pressure storm (seed %d):@.  %a@.@."
            (Forensics.engine_name impl) (seed0 + i) Pressure_storm.pp_outcome
            o;
          if not (Pressure_storm.ok o) then failed := true
        done)
      engines;
    finish obs;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "pressure-storm"
       ~doc:"Crash storms on a bounded, shrinking log: the governor \
             checkpoints, truncates and applies backpressure while clients \
             retry with backoff; the oracle is checked after every restart")
    Term.(
      const run $ obs_term $ backend_term $ seeds $ seed0 $ steps $ clients
      $ capacity $ crash_every $ depth $ rate $ impl $ group_commit
      $ record_cache $ audit $ time_travel $ forensic_dir)

(* --- media ops: backup / restore / scrub / media-storm --- *)

module Archive = Ariesrh_storage.Archive

let impl_of_tag = function
  | 0 -> Config.Rh
  | 1 -> Config.Eager
  | 2 -> Config.Lazy
  | t -> failwith (Printf.sprintf "archive manifest: unknown engine tag %d" t)

let db_dir_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "db" ] ~docv:"DIR"
        ~doc:
          "Directory of an existing file-backed database (as left by any \
           command run with $(b,--backend file)). Opened in place — the \
           geometry flags must match the run that created it.")

let archive_dir_arg ~doc =
  Arg.(
    required
    & opt (some string) None
    & info [ "archive" ] ~docv:"DIR" ~doc)

let media_geometry =
  let objects =
    Arg.(value & opt int 128
         & info [ "objects" ] ~doc:"Number of objects (must match the db).")
  in
  let opp =
    Arg.(value & opt int Config.default.Config.objects_per_page
         & info [ "objects-per-page" ]
             ~doc:"Objects per page (must match the db).")
  in
  let impl =
    Arg.(value & opt impl_conv Config.Rh
         & info [ "engine" ] ~doc:"Engine: rh, eager, or lazy.")
  in
  (objects, opp, impl)

(* Open an existing database directory in place — never through the
   backend factory, whose job is handing out {e fresh} scratch dirs. *)
let reopen_db ~dir ~objects ~objects_per_page ~impl =
  Db.set_backend_factory None;
  if not (Sys.file_exists dir) then
    failwith (Printf.sprintf "no database directory at %s" dir);
  Db.create
    ~backend:(Backend.File { dir })
    (Config.make ~n_objects:objects ~objects_per_page ~impl ())

let backup_cmd =
  let objects, opp, impl = media_geometry in
  let archive =
    archive_dir_arg
      ~doc:
        "Archive directory to create or extend: checksummed page-image \
         snapshot, manifest with the backup LSN, and the continuous WAL \
         copy."
  in
  let run obs db_dir archive_dir objects opp impl =
    (try
       let db = reopen_db ~dir:db_dir ~objects ~objects_per_page:opp ~impl in
       ignore (Db.recover db);
       ignore (Db.attach_archive ~dir:archive_dir db);
       let upto = Db.backup_to_archive db in
       Format.printf
         "{\"archive\": \"%s\", \"complete_upto\": %d, \"pages\": %d, \
          \"archived_records\": %d}@."
         archive_dir
         (Ariesrh_types.Lsn.to_int upto)
         (Config.pages_needed (Db.config db))
         (Db.archived_upto db);
       Db.close db
     with e ->
       Format.eprintf "backup failed: %a@." Errors.pp_exn e;
       finish obs;
       exit 1);
    finish obs
  in
  Cmd.v
    (Cmd.info "backup"
       ~doc:
         "Take a durable archive backup of a file-backed database: full \
          page-image snapshot plus a caught-up continuous WAL copy, each \
          independently checksummed. The archive alone supports a cold \
          $(b,ariesrh restore) after total media loss.")
    Term.(const run $ obs_term $ db_dir_arg $ archive $ objects $ opp $ impl)

let restore_cmd =
  let archive =
    archive_dir_arg
      ~doc:"Archive directory to restore from (cold open: geometry and \
            engine come from its manifest)."
  in
  let db_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "db" ] ~docv:"DIR"
          ~doc:
            "Restore into a file-backed database at $(docv) (fresh; \
             refused if it already exists). Default: restore in memory \
             and verify only.")
  in
  let run obs archive_dir db_dir =
    (try
       let a = Archive.open_dir archive_dir in
       let g = Archive.geometry a in
       let backend =
         match db_dir with
         | None -> Backend.Sim
         | Some d ->
             if Sys.file_exists d then
               failwith (Printf.sprintf "refusing to restore over %s" d);
             Backend.File { dir = d }
       in
       Db.set_backend_factory None;
       let db =
         Db.create ~backend
           (Config.make ~n_objects:g.Archive.n_objects
              ~objects_per_page:g.Archive.objects_per_page
              ~impl:(impl_of_tag g.Archive.impl_tag) ())
       in
       let report = Db.restore_from_archive db a in
       let violations = Db.audit db in
       let valid =
         match Db.validate db with Ok () -> true | Error _ -> false
       in
       Format.printf
         "{\"archive\": \"%s\", \"engine\": \"%s\", \"objects\": %d, \
          \"redo_applied\": %d, \"valid\": %b, \"audit_violations\": %d%s}@."
         archive_dir
         (Forensics.engine_name (impl_of_tag g.Archive.impl_tag))
         g.Archive.n_objects report.Ariesrh_recovery.Report.redo_applied valid
         (List.length violations)
         (match db_dir with
         | None -> ""
         | Some d -> Printf.sprintf ", \"db\": \"%s\"" d);
       List.iter (fun v -> Format.eprintf "audit: %s@." v) violations;
       Db.close db;
       if (not valid) || violations <> [] then begin
         finish obs;
         exit 1
       end
     with e ->
       Format.eprintf "restore failed: %a@." Errors.pp_exn e;
       finish obs;
       exit 1);
    finish obs
  in
  Cmd.v
    (Cmd.info "restore"
       ~doc:
         "Cold-restore a database from a durable archive after total media \
          loss: install the snapshot pages and archived WAL, replay history \
          since the backup LSN, run restart recovery, and verify \
          (invariants + restart self-audit). Exits nonzero unless the \
          restored state is fully consistent.")
    Term.(const run $ obs_term $ archive $ db_dir)

let scrub_cmd =
  let objects, opp, impl = media_geometry in
  let archive =
    Arg.(
      value
      & opt (some string) None
      & info [ "archive" ] ~docv:"DIR"
          ~doc:
            "Attach this archive as a heal source (WAL records, page \
             images) and include its own files in the sweep.")
  in
  let run obs db_dir archive_dir objects opp impl =
    (try
       let db = reopen_db ~dir:db_dir ~objects ~objects_per_page:opp ~impl in
       (match archive_dir with
       | Some d -> ignore (Db.attach_archive ~dir:d db)
       | None -> ());
       (* heal-then-recover: sweep the reopened (crashed) media first so
          the restart scan never trips over rot, then let the offline
          torn-page repair and recovery settle the rest *)
       let pre = Db.scrub db in
       let torn = Ariesrh_recovery.Repair.torn_pages (Db.env db) in
       ignore (Db.recover db);
       let post = Db.scrub db in
       let quarantined = Db.quarantined db in
       Format.printf
         "{\"checked\": %d, \"corrupt\": %d, \"healed\": %d, \
          \"torn_pages_repaired\": %d, \"unhealable\": %d, \
          \"quarantined\": [%s]}@."
         (pre.Db.checked + post.Db.checked)
         (pre.Db.corrupt + post.Db.corrupt)
         (pre.Db.healed + post.Db.healed)
         torn
         (List.length quarantined)
         (String.concat ", "
            (List.map
               (fun (t, i) -> Printf.sprintf "{\"media\": \"%s\", \"id\": %d}" t i)
               quarantined));
       Db.close db;
       if quarantined <> [] then begin
         finish obs;
         exit 1
       end
     with e ->
       Format.eprintf "scrub failed: %a@." Errors.pp_exn e;
       finish obs;
       exit 1);
    finish obs
  in
  Cmd.v
    (Cmd.info "scrub"
       ~doc:
         "Offline integrity sweep of a file-backed database: verify every \
          page (main and doublewrite shadow), every durable WAL record, and \
          the attached archive's files; heal what has an intact redundant \
          source. JSON summary on stdout; exits nonzero if anything stays \
          quarantined.")
    Term.(const run $ obs_term $ db_dir_arg $ archive $ objects $ opp $ impl)

let media_storm_cmd =
  let seeds =
    Arg.(value & opt int 3
         & info [ "seeds" ] ~doc:"Number of storms (distinct seeds).")
  in
  let seed0 =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"First storm seed.")
  in
  let rounds =
    Arg.(value & opt int Media_storm.default_config.Media_storm.rounds
         & info [ "rounds" ] ~doc:"Corruption/crash rounds per storm.")
  in
  let steps =
    Arg.(value & opt int Media_storm.default_config.Media_storm.steps_per_round
         & info [ "steps" ] ~doc:"Workload steps per round.")
  in
  let clients =
    Arg.(value & opt int 4 & info [ "clients" ] ~doc:"Concurrent clients.")
  in
  let objects =
    Arg.(value & opt int Media_storm.default_config.Media_storm.n_objects
         & info [ "objects" ] ~doc:"Number of objects.")
  in
  let rate =
    Arg.(value & opt float 0.2
         & info [ "delegation-rate" ] ~doc:"Delegation weight in the mix.")
  in
  let crash_every =
    Arg.(value & opt int 3
         & info [ "crash-every-rounds" ]
             ~doc:"Arm a crash every n-th round (0 = never).")
  in
  let scrub_batch =
    Arg.(value & opt int 8
         & info [ "scrub-batch" ]
             ~doc:"Incremental scrubber batch riding the workload.")
  in
  let group_commit =
    Arg.(value & opt int 0
         & info [ "group-commit" ]
             ~doc:"Batch commit log forces in groups of this size (0 = force \
                   each commit).")
  in
  let audit =
    Arg.(value & opt bool true
         & info [ "audit" ]
             ~doc:"Run the restart self-audit after every recovery; \
                   violations fail the storm.")
  in
  let archive_dir =
    Arg.(value & opt (some string) None
         & info [ "archive-dir" ] ~docv:"DIR"
             ~doc:
               "Mirror each storm's archive to disk under $(docv) and \
                cold-open it for the final restore. Default: in-memory \
                archive.")
  in
  let impl =
    Arg.(value & opt (some impl_conv) None
         & info [ "engine" ]
             ~doc:"Engine: rh, eager, or lazy. Default: all three.")
  in
  let forensic_dir =
    Arg.(value & opt string "."
         & info [ "forensic-dir" ] ~docv:"DIR"
             ~doc:"Directory for forensic failure dumps (event trail, \
                   per-mismatch lineage, metrics); $(b,none) disables them.")
  in
  let run obs sel seeds seed0 rounds steps clients objects rate crash_every
      scrub_batch group_commit audit archive_dir impl forensic_dir =
    let engines =
      match impl with
      | Some i -> [ i ]
      | None -> [ Config.Rh; Config.Eager; Config.Lazy ]
    in
    let config =
      { Media_storm.default_config with
        Media_storm.seed = Int64.of_int seed0;
        rounds;
        steps_per_round = steps;
        clients;
        n_objects = objects;
        p_delegate = rate;
        crash_every_rounds = crash_every;
        scrub_batch;
        group_commit;
        audit;
        backend_root = sel.backend_root;
        archive_root = archive_dir;
        forensic_dir =
          (if forensic_dir = "none" then None else Some forensic_dir) }
    in
    let failed = ref false in
    List.iter
      (fun impl ->
        let o = Media_storm.run_seeds ~config ~impl ~seeds () in
        Format.printf "%s media storm (%d seeds):@.  %a@.@."
          (Forensics.engine_name impl) seeds Media_storm.pp_outcome o;
        if not (Media_storm.ok o) then failed := true)
      engines;
    finish obs;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "media-storm"
       ~doc:
         "Silent-corruption storms: seeded bit-rot, lost and misdirected \
          writes, and archive rot interleaved with crashes while the \
          scrubber heals from shadows, the archive and the live log; every \
          round is checked against the oracle and the final phase proves a \
          cold restore after total media loss.")
    Term.(
      const run $ obs_term $ backend_term $ seeds $ seed0 $ rounds $ steps
      $ clients $ objects $ rate $ crash_every $ scrub_batch $ group_commit
      $ audit $ archive_dir $ impl $ forensic_dir)

(* --- metrics --- *)

let metrics_cmd =
  let steps =
    Arg.(value & opt int 400 & info [ "steps" ] ~doc:"Workload steps.")
  in
  let objects =
    Arg.(value & opt int 64 & info [ "objects" ] ~doc:"Number of objects.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload seed.")
  in
  let rate =
    Arg.(value & opt float 0.2
         & info [ "delegation-rate" ] ~doc:"Delegation weight in the mix.")
  in
  let impl =
    Arg.(value & opt impl_conv Config.Rh
         & info [ "engine" ] ~doc:"Engine: rh, eager, or lazy.")
  in
  let format =
    Arg.(value
         & opt (enum [ ("openmetrics", `Openmetrics); ("json", `Json) ])
             `Openmetrics
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Exposition format: openmetrics (Prometheus text) or json.")
  in
  let run obs (_ : backend_sel) impl steps objects seed rate format =
    let spec = spec_of ~objects ~steps ~delegation_rate:rate in
    let script = Gen.generate spec ~seed:(Int64.of_int seed) in
    let db = Driver.fresh_db ~impl ~n_objects:objects () in
    Driver.run db script;
    Db.checkpoint db;
    Db.crash db;
    ignore (Db.recover db);
    let samples = Obs.Metrics.snapshot (Db.metrics db) in
    (match format with
    | `Openmetrics -> print_string (Obs.Metrics.to_openmetrics samples)
    | `Json -> print_endline (Obs.Json.to_string (Obs.Metrics.to_json samples)));
    finish obs
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Run a canned workload (with a checkpoint and a crash-restart) \
             and export every registered metric")
    Term.(
      const run $ obs_term $ backend_term $ impl $ steps $ objects $ seed
      $ rate $ format)

let main =
  Cmd.group
    (Cmd.info "ariesrh" ~version:"1.0.0"
       ~doc:"Delegation by efficiently rewriting history (ARIES/RH)")
    [ figures_cmd; run_cmd; compare_cmd; sim_cmd; history_cmd; asof_cmd;
      explain_cmd; lineage_cmd; storm_cmd; recovery_storm_cmd;
      pressure_storm_cmd; backup_cmd;
      restore_cmd; scrub_cmd; media_storm_cmd; metrics_cmd ]

let () = exit (Cmd.eval main)
