(* Executable reproductions of the paper's figures. Each prints the
   artifact and asserts the properties the figure illustrates, so `dune
   exec bin/ariesrh.exe -- figures all` doubles as a regression check. *)

open Ariesrh_types
open Ariesrh_core
module Log_store = Ariesrh_wal.Log_store
module Record = Ariesrh_wal.Record
module Env = Ariesrh_recovery.Env
module Rewrite = Ariesrh_recovery.Rewrite

let ob_a = Oid.of_int 0
let ob_b = Oid.of_int 1
let ob_x = Oid.of_int 2
let ob_y = Oid.of_int 3

let name_of o =
  if Oid.equal o ob_a then "a"
  else if Oid.equal o ob_b then "b"
  else if Oid.equal o ob_x then "x"
  else "y"

let pp_rec ppf (r : Record.t) =
  match (r.xid, r.body) with
  | Some x, Record.Update u ->
      Format.fprintf ppf "update[%a, %s]" Xid.pp x (name_of u.oid)
  | Some x, Record.Delegate { tee; oid; _ } ->
      Format.fprintf ppf "delegate(%a, %a, %s)" Xid.pp x Xid.pp tee
        (name_of oid)
  | _, _ -> Record.pp ppf r

let dump log =
  Log_store.iter_forward log ~from:Lsn.first (fun lsn r ->
      Format.printf "  %3d  %a@." (Lsn.to_int lsn) pp_rec r)

(* The Fig. 2 log: update[t1,a] update[t2,x] update[t2,a] update[t1,b]
   update[t1,a] update[t2,y], then delegate(t1,t2,a). Built on a raw log
   store so the record sequence matches the figure exactly (no begin
   records — the paper's fragment omits them too). *)
let fig2_log () =
  let log = Log_store.create () in
  let t1 = Xid.of_int 1 and t2 = Xid.of_int 2 in
  let upd oid = Record.Update { oid; page = Page_id.of_int 0; op = Record.Add 1 } in
  let t1_prev = ref Lsn.nil and t2_prev = ref Lsn.nil in
  let app x prev body =
    let lsn = Log_store.append log (Record.mk x ~prev:!prev body) in
    prev := lsn;
    lsn
  in
  ignore (app t1 t1_prev (upd ob_a));
  ignore (app t2 t2_prev (upd ob_x));
  ignore (app t2 t2_prev (upd ob_a));
  ignore (app t1 t1_prev (upd ob_b));
  ignore (app t1 t1_prev (upd ob_a));
  ignore (app t2 t2_prev (upd ob_y));
  let d =
    Record.mk t1 ~prev:!t1_prev
      (Record.Delegate { tee = t2; tee_prev = !t2_prev; oid = ob_a; op = None })
  in
  let dlsn = Log_store.append log d in
  t1_prev := dlsn;
  t2_prev := dlsn;
  Log_store.flush log ~upto:(Log_store.head log);
  (log, t1, t2)

let env_of log =
  let pool =
    Ariesrh_storage.Buffer_pool.create ~capacity:4
      ~disk:(Ariesrh_storage.Disk.create ~pages:1 ~slots_per_page:4 ())
      ~wal_flush:(fun _ -> ())
      ()
  in
  Env.make ~log ~pool
    ~place:(fun oid -> (Page_id.of_int 0, Oid.to_int oid))
    ()

let fig1_2 () =
  Format.printf "=== Figures 1 & 2: rewriting history, operationally ===@.@.";
  let log, t1, t2 = fig2_log () in
  Format.printf "before rewriting (delegate(t1,t2,a) at LSN 7):@.";
  dump log;
  (* the literal Fig. 1 loop: walk t1's backward chain from the delegate
     record, re-attributing updates to a *)
  let n =
    Rewrite.attribute_only (env_of log) ~tor:t1 ~tee:t2 ob_a
      ~from:(Lsn.of_int 7)
  in
  Format.printf "@.after rewriting (%d records re-attributed):@." n;
  dump log;
  let writer lsn =
    Xid.to_int (Record.writer_exn (Log_store.read log (Lsn.of_int lsn)))
  in
  assert (n = 2);
  assert (writer 1 = 2) (* update[t1,a] -> t2 *);
  assert (writer 4 = 1) (* update[t1,b] untouched *);
  assert (writer 5 = 2) (* update[t1,a] -> t2 *);
  assert (writer 2 = 2 && writer 3 = 2 && writer 6 = 2);
  Format.printf
    "@.as in the paper: both of t1's updates to a now read as t2's;@.";
  Format.printf "t1's update to b and t2's own records are untouched.@.@."

let fig4 () =
  Format.printf "=== Figure 4: backward chains through a delegate record ===@.@.";
  let log, t1, t2 = fig2_log () in
  let chain x =
    (* head (most recent) first *)
    let rec go lsn acc =
      if Lsn.is_nil lsn then List.rev acc
      else go (Record.prev_for (Log_store.read log lsn) x) (lsn :: acc)
    in
    go (Lsn.of_int 7) []
  in
  let show x =
    Format.printf "  BC(%a): %s@." Xid.pp x
      (String.concat " -> "
         (List.map (fun l -> string_of_int (Lsn.to_int l)) (chain x)))
  in
  show t1;
  show t2;
  assert (List.map Lsn.to_int (chain t1) = [ 7; 5; 4; 1 ]);
  assert (List.map Lsn.to_int (chain t2) = [ 7; 6; 3; 2 ]);
  Format.printf
    "@.the delegate record (LSN 7) heads *both* chains, with separate@.";
  Format.printf "torBC and teeBC pointers — exactly Fig. 6's record layout.@.@."

let fig5 () =
  Format.printf "=== Figure 5: Ob_Lists and scopes after Example 1 ===@.@.";
  let db = Db.create (Config.make ~n_objects:8 ~locking:false ()) in
  let t1 = Db.begin_txn db in
  let t2 = Db.begin_txn db in
  (* Example 1's update pattern (begin records shift LSNs by 2) *)
  Db.add db t1 ob_a 1;
  Db.add db t2 ob_x 1;
  Db.add db t2 ob_a 1;
  Db.add db t1 ob_b 1;
  Db.add db t1 ob_a 1;
  Db.add db t2 ob_y 1;
  Db.delegate db ~from_:t1 ~to_:t2 ob_a;
  let show x =
    Format.printf "  Ob_List(%a):@." Xid.pp x;
    List.iter
      (fun o ->
        Format.printf "    %s: scopes" (name_of o);
        List.iter
          (fun (s : Ariesrh_txn.Scope.t) ->
            Format.printf " (%a, %d..%d)" Xid.pp s.invoker (Lsn.to_int s.first)
              (Lsn.to_int s.last))
          (Db.scopes_of db x o);
        Format.printf "@.")
      (Db.responsible_objects db x)
  in
  show t1;
  show t2;
  assert (Db.responsible_objects db t1 = [ ob_b ]);
  assert (List.length (Db.scopes_of db t2 ob_a) = 2);
  Format.printf
    "@.after the delegation, t2's entry for a holds two scopes — its own@.";
  Format.printf
    "and the one received from t1 (tagged with invoker t1), while t1@.";
  Format.printf "keeps only b. Matches Fig. 5.@.@."

let fig3 () =
  Format.printf "=== Figure 3: ARIES passes over the log ===@.@.";
  let db = Db.create (Config.make ~n_objects:8 ()) in
  let t1 = Db.begin_txn db in
  Db.write db t1 (Oid.of_int 0) 1;
  Db.commit db t1;
  let t2 = Db.begin_txn db in
  Db.write db t2 (Oid.of_int 1) 2;
  Db.write db t2 (Oid.of_int 2) 3;
  (* the log buffer happens to fill and flush just before the crash, so
     the loser's records are durable and there is work for undo *)
  Log_store.flush (Db.log_store db) ~upto:(Log_store.head (Db.log_store db));
  Db.crash db;
  let head = Lsn.to_int (Log_store.head (Db.log_store db)) in
  let r = Db.recover db in
  Format.printf
    "  log has %d records at the crash@.  forward pass (analysis + redo): \
     %d records scanned, %d updates redone@.  backward pass (undo): %d \
     records examined, %d updates undone@."
    head r.forward_records r.redo_applied r.backward_examined r.undos;
  assert (r.forward_records = head);
  assert (r.undos = 2);
  Format.printf
    "@.one forward sweep (analysis+redo merged, as ARIES/RH assumes),@.";
  Format.printf "then a backward undo sweep: Fig. 3's two passes.@.@."

(* Three well-separated groups of loser scopes, as in Fig. 7: recovery
   must examine records inside the clusters and jump over the gaps. *)
let fig7_8 () =
  Format.printf "=== Figures 7 & 8: loser scope clusters in the backward pass ===@.@.";
  let db = Db.create (Config.make ~n_objects:64 ~locking:false ()) in
  let filler_xid = Db.begin_txn db in
  let filler =
    (* a winner writing many boring records to create the gaps *)
    fun n ->
     for _ = 1 to n do
       Db.add db filler_xid (Oid.of_int 63) 1
     done
  in
  let loser_cluster ~base k =
    (* k loser scopes over one log region: all open, some winner noise,
       all extend — so the scopes overlap and form a single cluster *)
    let losers = List.init k (fun _ -> Db.begin_txn db) in
    List.iteri (fun i l -> Db.add db l (Oid.of_int (base + i)) 1) losers;
    filler 2;
    List.iteri (fun i l -> Db.add db l (Oid.of_int (base + i)) 1) losers;
    losers
  in
  let c1 = loser_cluster ~base:0 2 in
  filler 40;
  let c2 = loser_cluster ~base:10 4 in
  filler 40;
  let c3 = loser_cluster ~base:20 1 in
  ignore (c1, c2, c3);
  Db.commit db filler_xid;
  Db.crash db;
  let total = Lsn.to_int (Log_store.head (Db.log_store db)) in
  let r = Db.recover db in
  Format.printf
    "  %d log records; 3 groups of loser scopes separated by long runs@.  \
     of winner activity.@.  backward pass: %d clusters, %d records \
     examined, %d skipped, %d undos@."
    total r.clusters r.backward_examined r.backward_skipped r.undos;
  assert (r.clusters = 3);
  assert (r.undos = 14);
  assert (r.backward_skipped > 80);
  assert (r.backward_examined + r.backward_skipped <= total);
  Format.printf
    "@.the sweep visited each record at most once, in decreasing LSN@.";
  Format.printf
    "order, and never looked at the %d records between clusters —@."
    r.backward_skipped;
  Format.printf "the α/β loop of Fig. 8.@.@."

let all () =
  fig1_2 ();
  fig3 ();
  fig4 ();
  fig5 ();
  fig7_8 ();
  Format.printf "all figure reproductions check out.@."

let run = function
  | "f1" | "f2" | "f1_2" -> fig1_2 ()
  | "f3" -> fig3 ()
  | "f4" -> fig4 ()
  | "f5" -> fig5 ()
  | "f7" | "f8" | "f7_8" -> fig7_8 ()
  | "all" -> all ()
  | s -> Format.eprintf "unknown figure %S (f1 f2 f3 f4 f5 f7 f8 all)@." s
