#!/usr/bin/env python3
"""Gate E16's deterministic hot-path counters against the committed baseline.

Usage: python3 bench/check_e16.py BENCH_e16.json [bench/baseline_e16.json]

Every E16 counter is a logical count (record decodes, eviction scans,
log forces, scope probes) over fixed seeded workloads — no wall time —
so on identical code the run reproduces the baseline bit for bit, and
any drift is a real behaviour change.  The gate fails when a cost
counter grows more than 5% over baseline, or when the committed-work
sanity figure shrinks more than 5%.  An intentional improvement (or an
intentional workload change) lands by refreshing the baseline in the
same commit:

    dune exec bench/main.exe -- e16
    python3 - <<'EOF'
    import json
    d = json.load(open('BENCH_e16.json'))
    json.dump({'experiment': 'e16', 'counters': d['counters']},
              open('bench/baseline_e16.json', 'w'), indent=2)
    EOF

Stdlib only; no third-party dependencies.
"""

import json
import sys

TOLERANCE = 0.05

# Counters where growth is a regression (more work on the same seeded
# workload).  Everything except the sanity figure below.
COST_COUNTERS = [
    "decode_calls_uncached",
    "decode_calls_cached",
    "evictions_pool4",
    "eviction_scans_pool4",
    "evictions_pool32",
    "eviction_scans_pool32",
    "log_flushes_eager",
    "log_flushes_grouped",
    "scope_probes",
]

# Shrinking committed work means the simulator got less done — also a
# regression, just in the other direction.
THROUGHPUT_COUNTERS = ["sim_committed"]


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    bench_path = sys.argv[1]
    base_path = sys.argv[2] if len(sys.argv) > 2 else "bench/baseline_e16.json"
    bench = json.load(open(bench_path))["counters"]
    base = json.load(open(base_path))["counters"]

    failures = []
    improvements = []
    for engine, base_row in sorted(base.items()):
        row = bench.get(engine)
        if row is None:
            failures.append(f"{engine}: missing from {bench_path}")
            continue
        for key in COST_COUNTERS + THROUGHPUT_COUNTERS:
            if key not in base_row:
                continue
            old, new = base_row[key], row.get(key)
            if new is None:
                failures.append(f"{engine}.{key}: missing from {bench_path}")
            elif key in COST_COUNTERS and new > old * (1 + TOLERANCE):
                failures.append(
                    f"{engine}.{key}: {old} -> {new} "
                    f"(+{100.0 * (new - old) / max(1, old):.1f}%, limit +5%)"
                )
            elif key in THROUGHPUT_COUNTERS and new < old * (1 - TOLERANCE):
                failures.append(
                    f"{engine}.{key}: {old} -> {new} "
                    f"({100.0 * (new - old) / max(1, old):.1f}%, limit -5%)"
                )
            elif new != old:
                improvements.append(f"{engine}.{key}: {old} -> {new}")
        # structural invariant, pool-size independent: one frame
        # examined per eviction
        for size in ("pool4", "pool32"):
            if row.get(f"eviction_scans_{size}") != row.get(f"evictions_{size}"):
                failures.append(
                    f"{engine}: eviction no longer O(1) at {size}: "
                    f"{row.get(f'eviction_scans_{size}')} scans for "
                    f"{row.get(f'evictions_{size}')} evictions"
                )

    if improvements:
        print("counters that moved inside tolerance (refresh the baseline")
        print("if intentional):")
        for line in improvements:
            print(f"  {line}")
    if failures:
        print(f"E16 regression gate FAILED vs {base_path}:")
        for line in failures:
            print(f"  {line}")
        sys.exit(1)
    print(f"E16 regression gate passed vs {base_path}.")


if __name__ == "__main__":
    main()
