(* The experiment harness: one entry per experiment in EXPERIMENTS.md.

   The paper (an algorithms + correctness paper) reports no measured
   tables; its evaluation artifacts are Figures 1-8 (reproduced by
   `bin/ariesrh.exe figures all`) and the §4.2 efficiency claims, which
   the experiments below turn into measurements against the eager/lazy
   history-rewriting baselines.

   Run everything:     dune exec bench/main.exe
   Run one experiment: dune exec bench/main.exe -- e3 *)

open Ariesrh_types
open Ariesrh_core
open Ariesrh_workload
module Log_store = Ariesrh_wal.Log_store
module Log_stats = Ariesrh_wal.Log_stats
module Buffer_pool = Ariesrh_storage.Buffer_pool
module Ob_list = Ariesrh_txn.Ob_list
module Obs = Ariesrh_obs

let header title claim =
  Format.printf "@.=== %s ===@.%s@.@." title claim

(* Every machine-readable artifact (BENCH_*.json) lands in one
   directory, set by ARIESRH_BENCH_DIR (default [_bench/], created on
   first use) — never the repo root. *)
let bench_dir =
  lazy
    (let dir =
       match Sys.getenv_opt "ARIESRH_BENCH_DIR" with
       | Some d when d <> "" -> d
       | _ -> "_bench"
     in
     Ariesrh_storage.Backend.mkdir_p dir;
     dir)

let bench_path name = Filename.concat (Lazy.force bench_dir) name

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, 1000. *. (Unix.gettimeofday () -. t0))

let flush_log db =
  Log_store.flush (Db.log_store db) ~upto:(Log_store.head (Db.log_store db))

(* ------------------------------------------------------------------ *)
(* E1: no delegation, no overhead                                      *)
(* ------------------------------------------------------------------ *)

let e1 () =
  header "E1: no delegation, no overhead (§4.2)"
    "ARIES/RH against conventional ARIES on a delegation-free workload:\n\
     normal processing and recovery should cost the same (ratio ~ 1).";
  let spec =
    { Gen.spec_no_delegation with n_objects = 256; n_steps = 2000;
      p_checkpoint = 0.0 }
  in
  let script = Gen.generate spec ~seed:7L in
  let fresh impl () = Driver.fresh_db ~impl ~n_objects:256 () in
  let np_test name impl =
    Bechamel.Test.make_with_resource ~name Bechamel.Test.multiple
      ~allocate:(fresh impl) ~free:ignore
      (Bechamel.Staged.stage (fun db -> Driver.run db script))
  in
  let crashed impl () =
    let db = fresh impl () in
    Driver.run db script;
    flush_log db;
    Db.crash db;
    db
  in
  let rec_test name impl =
    Bechamel.Test.make_with_resource ~name Bechamel.Test.multiple
      ~allocate:(crashed impl) ~free:ignore
      (Bechamel.Staged.stage (fun db -> ignore (Db.recover db)))
  in
  let results =
    Bench.run ~quota:1.0 ~limit:60
      [
        np_test "np/aries-rh" Config.Rh;
        np_test "np/aries" Config.Eager;
        rec_test "rec/aries-rh" Config.Rh;
        rec_test "rec/aries" Config.Eager;
      ]
  in
  let v n = Bench.find n results /. 1e6 in
  Format.printf "%-24s %12s@." "phase" "ms/run";
  Format.printf "%-24s %12.3f@." "normal ARIES/RH" (v "np/aries-rh");
  Format.printf "%-24s %12.3f@." "normal ARIES" (v "np/aries");
  Format.printf "%-24s %12.2f@." "  ratio (RH/ARIES)"
    (v "np/aries-rh" /. v "np/aries");
  Format.printf "%-24s %12.3f@." "recovery ARIES/RH" (v "rec/aries-rh");
  Format.printf "%-24s %12.3f@." "recovery ARIES" (v "rec/aries");
  Format.printf "%-24s %12.2f@." "  ratio (RH/ARIES)"
    (v "rec/aries-rh" /. v "rec/aries")

(* ------------------------------------------------------------------ *)
(* E2: normal-processing delegation cost is linear                     *)
(* ------------------------------------------------------------------ *)

let e2 () =
  header "E2: delegation cost during normal processing (§4.2)"
    "Cost of one delegate() sweep over k objects. ARIES/RH pays one log\n\
     record + an Ob_List move per object (linear, microseconds); eager\n\
     rewriting pays a walk over the delegator's whole backward chain\n\
     with in-place patches (linear in chain length, and each record\n\
     rewrite is a random log write).";
  let ks = [ 1; 10; 100; 1000 ] in
  let alloc impl k () =
    let db =
      Db.create
        (Config.make ~n_objects:2048 ~buffer_capacity:512 ~impl
           ~locking:false ())
    in
    let tor = Db.begin_txn db in
    let tee = Db.begin_txn db in
    for i = 0 to k - 1 do
      Db.add db tor (Oid.of_int i) 1
    done;
    (db, tor, tee)
  in
  let test name impl =
    Bechamel.Test.make_indexed_with_resource ~name ~args:ks
      Bechamel.Test.multiple
      ~allocate:(fun k -> alloc impl k ())
      ~free:ignore
      (fun _k ->
        Bechamel.Staged.stage (fun (db, tor, tee) ->
            Db.delegate_all db ~from_:tor ~to_:tee))
  in
  let results =
    Bench.run ~quota:0.5 ~limit:40
      [ test "rh" Config.Rh; test "eager" Config.Eager ]
  in
  Format.printf "%-6s %14s %14s %16s@." "k" "rh (us)" "eager (us)"
    "rh us/object";
  List.iter
    (fun k ->
      let rh = Bench.find (Printf.sprintf "rh:%d" k) results /. 1e3 in
      let eager = Bench.find (Printf.sprintf "eager:%d" k) results /. 1e3 in
      Format.printf "%-6d %14.2f %14.2f %16.3f@." k rh eager
        (rh /. float_of_int k))
    ks

(* ------------------------------------------------------------------ *)
(* E3: eager vs lazy vs RH across delegation rates                     *)
(* ------------------------------------------------------------------ *)

let e3 () =
  header "E3: the three implementations of delegation (§3.1-3.2)"
    "Same workload under eager rewriting, lazy rewriting, and RH, as the\n\
     delegation rate grows. np_* = normal processing, rec_* = recovery\n\
     after a crash. rewrites are in-place log writes (history surgery);\n\
     RH never performs any. Expect: eager normal processing degrades\n\
     with the delegation rate; lazy moves the rewrites into recovery;\n\
     RH does neither and recovery stays at conventional-ARIES cost.";
  let rates = [ 0.0; 0.05; 0.1; 0.2; 0.4 ] in
  Format.printf "%-6s %-6s | %9s %11s %9s | %9s %11s %9s %9s@." "rate"
    "engine" "np(ms)" "np_rewrite" "np_fetch" "rec(ms)" "rec_rewrite"
    "rec_fetch" "undos";
  List.iter
    (fun rate ->
      let spec =
        {
          Gen.default with
          n_objects = 256;
          n_steps = 3000;
          max_concurrent = 16;
          p_delegate = rate;
          p_commit = 0.05;
          p_abort = 0.02;
          p_checkpoint = 0.0;
          terminate_all = false;
        }
      in
      let script = Gen.generate spec ~seed:11L in
      (* crash while transactions are still in flight, so recovery has
         real undo work *)
      let crash_at = List.length script * 9 / 10 in
      List.iter
        (fun (name, impl) ->
          let db = Driver.fresh_db ~impl ~n_objects:256 () in
          let stats = Log_store.stats (Db.log_store db) in
          let (), np_ms = time (fun () -> Driver.run ~upto:crash_at db script) in
          let np = Log_stats.copy stats in
          flush_log db;
          Db.crash db;
          let report, rec_ms = time (fun () -> Db.recover db) in
          Format.printf
            "%-6.2f %-6s | %9.2f %11d %9d | %9.2f %11d %9d %9d@." rate name
            np_ms np.rewrites np.page_fetches rec_ms report.log_io.rewrites
            report.log_io.page_fetches report.undos)
        [ ("rh", Config.Rh); ("lazy", Config.Lazy); ("eager", Config.Eager) ])
    rates

(* ------------------------------------------------------------------ *)
(* E4: the backward pass visits only loser clusters                    *)
(* ------------------------------------------------------------------ *)

let e4 () =
  header "E4: backward-pass log visits vs loser-scope density (§3.6.2)"
    "Synthetic logs with G clusters of loser scopes separated by winner\n\
     runs. A naive backward scan would examine every record from the\n\
     log's end to the oldest loser scope; ARIES/RH examines only the\n\
     records inside clusters and skips the gaps (Fig. 7/8).";
  Format.printf "%-8s %8s | %9s %9s %9s %12s@." "clusters" "records"
    "examined" "skipped" "undos" "visited";
  List.iter
    (fun groups ->
      let s =
        Scenario.build ~groups ~losers_per_group:4 ~updates_per_loser:2
          ~gap:(4096 / groups) ~delegated:true ()
      in
      let report = Db.recover s.db in
      (* the naive alternative scans every record backwards from the end
         of the log down to the oldest loser update; the clusters start
         right at the log's beginning here, so that region is the whole
         log *)
      Format.printf "%-8d %8d | %9d %9d %9d %11.1f%%@." groups
        s.total_records report.backward_examined report.backward_skipped
        report.undos
        (100.
        *. float_of_int report.backward_examined
        /. float_of_int s.total_records))
    [ 1; 2; 4; 8; 16; 32 ]

(* ------------------------------------------------------------------ *)
(* E5: recovery scaling with log length                                *)
(* ------------------------------------------------------------------ *)

let e5 () =
  header "E5: recovery cost vs log length (§4.2)"
    "Fixed loser population, growing winner history. The forward pass is\n\
     linear in the log (as in ARIES); the backward pass depends only on\n\
     the loser clusters, not the log length.";
  Format.printf "%-10s | %10s %10s %10s %10s@." "log recs" "fwd_recs"
    "bwd_exam" "bwd_skip" "rec(ms)";
  List.iter
    (fun gap ->
      let s =
        Scenario.build ~groups:4 ~losers_per_group:4 ~updates_per_loser:2
          ~gap ~delegated:true ()
      in
      let report, ms = time (fun () -> Db.recover s.db) in
      Format.printf "%-10d | %10d %10d %10d %10.2f@." s.total_records
        report.forward_records report.backward_examined
        report.backward_skipped ms)
    [ 250; 500; 1000; 2000; 4000; 8000 ]

(* ------------------------------------------------------------------ *)
(* E6: EOS (NO-UNDO/REDO) with delegation                              *)
(* ------------------------------------------------------------------ *)

let e6 () =
  header "E6: delegation under NO-UNDO/REDO (EOS, §3.7)"
    "The same write-only workload on the EOS-style engine and on\n\
     ARIES/RH. EOS recovery is a single forward sweep of committed\n\
     private logs (no undo by construction); final states must agree.";
  let spec =
    {
      Gen.default with
      n_objects = 256;
      n_steps = 3000;
      p_add = 0.0;
      p_checkpoint = 0.0;
      p_savepoint = 0.0;
      p_rollback = 0.0;
    }
  in
  let script = Gen.generate spec ~seed:13L in
  let n = List.length script in
  (* EOS side *)
  let eos = Ariesrh_eos.Eos_db.create ~n_objects:256 in
  let xids = Hashtbl.create 64 in
  let x t = Hashtbl.find xids t in
  let run_eos () =
    List.iter
      (fun a ->
        match a with
        | Script.Begin t ->
            Hashtbl.replace xids t (Ariesrh_eos.Eos_db.begin_txn eos)
        | Script.Read (t, o) ->
            ignore (Ariesrh_eos.Eos_db.read eos (x t) (Oid.of_int o))
        | Script.Write (t, o, v) ->
            Ariesrh_eos.Eos_db.write eos (x t) (Oid.of_int o) v
        | Script.Add _ -> ()
        | Script.Delegate (f, g, o) ->
            Ariesrh_eos.Eos_db.delegate eos ~from_:(x f) ~to_:(x g)
              (Oid.of_int o)
        | Script.Savepoint _ | Script.Rollback_to _ -> ()
        | Script.Commit t -> Ariesrh_eos.Eos_db.commit eos (x t)
        | Script.Abort t -> Ariesrh_eos.Eos_db.abort eos (x t)
        | Script.Checkpoint -> ())
      script
  in
  let (), eos_np = time run_eos in
  Ariesrh_eos.Eos_db.crash eos;
  let eos_report, eos_rec = time (fun () -> Ariesrh_eos.Eos_db.recover eos) in
  (* ARIES/RH side *)
  let rh = Driver.fresh_db ~n_objects:256 () in
  let (), rh_np = time (fun () -> Driver.run rh script) in
  flush_log rh;
  Db.crash rh;
  let rh_report, rh_rec = time (fun () -> Db.recover rh) in
  let agree =
    Ariesrh_eos.Eos_db.peek_all eos = Db.peek_all rh
    && Db.peek_all rh = Oracle.expected ~n_objects:256 script
  in
  Format.printf "%d script actions, %d transactions@.@." n (Script.txns script);
  Format.printf "%-10s %10s %10s %22s@." "engine" "np(ms)" "rec(ms)"
    "recovery work";
  Format.printf "%-10s %10.2f %10.2f %22s@." "eos" eos_np eos_rec
    (Printf.sprintf "%d entries redone" eos_report.entries_replayed);
  Format.printf "%-10s %10.2f %10.2f %22s@." "aries/rh" rh_np rh_rec
    (Printf.sprintf "%d fwd + %d undos" rh_report.forward_records
       rh_report.undos);
  Format.printf "@.final states agree with each other and the oracle: %b@."
    agree

(* ------------------------------------------------------------------ *)
(* E7: the cost of synthesizing ETMs on delegation                     *)
(* ------------------------------------------------------------------ *)

let e7 () =
  header "E7: synthesizing extended transaction models (§2.2)"
    "The same batched-update job written as flat transactions, nested\n\
     transactions, split transactions, and a reporting transaction. The\n\
     ETMs pay for their extra semantics only the delegation machinery:\n\
     one delegate record per object handed over.";
  let groups = 200 and per_group = 5 in
  let n_objects = (groups * per_group) + 1 in
  let fresh () =
    Db.create
      (Config.make ~n_objects ~buffer_capacity:256 ~objects_per_page:8 ())
  in
  let ob g i = Oid.of_int ((g * per_group) + i) in
  let flat () =
    let db = fresh () in
    for g = 0 to groups - 1 do
      let t = Db.begin_txn db in
      for i = 0 to per_group - 1 do
        Db.add db t (ob g i) 1
      done;
      Db.commit db t
    done;
    db
  in
  let nested () =
    let db = fresh () in
    let rt = Ariesrh_etm.Asset.create db in
    let root = Ariesrh_etm.Nested.start rt in
    for g = 0 to groups - 1 do
      ignore
        (Ariesrh_etm.Nested.run_sub root (fun sub ->
             for i = 0 to per_group - 1 do
               Ariesrh_etm.Nested.add sub (ob g i) 1
             done))
    done;
    Ariesrh_etm.Nested.commit_root root;
    db
  in
  let split () =
    let db = fresh () in
    let rt = Ariesrh_etm.Asset.create db in
    let session = Ariesrh_etm.Asset.initiate_empty rt ~name:"session" () in
    for g = 0 to groups - 1 do
      for i = 0 to per_group - 1 do
        Ariesrh_etm.Asset.add rt session (ob g i) 1
      done;
      let part =
        Ariesrh_etm.Split.split rt session
          ~objects:(List.init per_group (fun i -> ob g i))
      in
      Ariesrh_etm.Asset.commit rt part
    done;
    Ariesrh_etm.Asset.commit rt session;
    db
  in
  let reporting () =
    let db = fresh () in
    let rt = Ariesrh_etm.Asset.create db in
    let r = Ariesrh_etm.Reporting.start rt in
    for g = 0 to groups - 1 do
      for i = 0 to per_group - 1 do
        Ariesrh_etm.Reporting.add r (ob g i) 1
      done;
      ignore (Ariesrh_etm.Reporting.report r)
    done;
    Ariesrh_etm.Reporting.finish r;
    db
  in
  let check db =
    (* every object incremented exactly once, whatever the model *)
    let ok = ref true in
    for g = 0 to groups - 1 do
      for i = 0 to per_group - 1 do
        if Db.peek db (ob g i) <> 1 then ok := false
      done
    done;
    !ok
  in
  let total_ops = groups * per_group in
  let flat_time = ref 0.0 in
  Format.printf "%-12s %10s %12s %10s %10s@." "model" "time(ms)" "ops/ms"
    "overhead" "correct";
  List.iter
    (fun (name, f) ->
      let db, ms = time f in
      if name = "flat" then flat_time := ms;
      Format.printf "%-12s %10.2f %12.1f %9.2fx %10b@." name ms
        (float_of_int total_ops /. ms)
        (ms /. !flat_time) (check db))
    [
      ("flat", flat); ("nested", nested); ("split", split);
      ("reporting", reporting);
    ]

(* ------------------------------------------------------------------ *)
(* E8: delegation pins the log truncation horizon                      *)
(* ------------------------------------------------------------------ *)

let e8 () =
  header "E8: delegation pins the log (ablation on the recovery horizon)"
    "Short worker transactions commit and go away; a rotating collector\n\
     receives (or, in the baseline, does not receive) delegation of one\n\
     object per worker. Delegated-in scopes reach back to updates whose\n\
     invokers committed long ago, so the oldest LSN that undo might need\n\
     - the log truncation horizon - stops advancing. The baseline\n\
     reclaims almost everything at each checkpoint.";
  let run ~delegated =
    let db =
      Db.create
        (Config.make ~n_objects:4096 ~buffer_capacity:1024 ~locking:false ())
    in
    let collector = ref (Db.begin_txn db) in
    let next_ob = ref 0 in
    let rows = ref [] in
    for round = 1 to 6 do
      for _ = 1 to 200 do
        let w = Db.begin_txn db in
        let o = Oid.of_int !next_ob in
        incr next_ob;
        Db.add db w o 1;
        if delegated then Db.delegate db ~from_:w ~to_:!collector o;
        Db.commit db w
      done;
      (* rotate the collector: hand everything to a fresh one, so begin
         records stay recent and only the scopes can pin *)
      let fresh = Db.begin_txn db in
      (if delegated then
         match Db.responsible_objects db !collector with
         | [] -> ()
         | _ -> Db.delegate_all db ~from_:!collector ~to_:fresh);
      Db.commit db !collector;
      collector := fresh;
      Db.shutdown db;
      Db.checkpoint db;
      let head = Lsn.to_int (Log_store.head (Db.log_store db)) in
      let horizon = Lsn.to_int (Db.truncation_horizon db) in
      let reclaimed = Db.truncate_log db in
      rows := (round, head, horizon, head - horizon, reclaimed) :: !rows
    done;
    List.rev !rows
  in
  let with_d = run ~delegated:true in
  let without = run ~delegated:false in
  Format.printf "%-6s | %28s | %28s@." ""
    "-- with delegation --" "-- without --";
  Format.printf "%-6s | %8s %9s %9s | %8s %9s %9s@." "round" "head"
    "horizon" "pinned" "head" "horizon" "pinned";
  List.iter2
    (fun (r, h1, z1, p1, _) (_, h2, z2, p2, _) ->
      Format.printf "%-6d | %8d %9d %9d | %8d %9d %9d@." r h1 z1 p1 h2 z2 p2)
    with_d without

(* ------------------------------------------------------------------ *)
(* E9: what cluster skipping buys (ablation)                           *)
(* ------------------------------------------------------------------ *)

let e9 () =
  header "E9: cluster sweep vs naive scan (ablation of §3.6.2)"
    "Identical crashed logs recovered twice: once with the Fig. 8\n\
     cluster-based backward pass, once with the strawman that examines\n\
     every record between the newest and oldest loser scope. Decisions\n\
     are identical; only the visits differ.";
  Format.printf "%-10s | %12s %12s | %12s %10s@." "log recs"
    "cluster_exam" "naive_exam" "saving" "undos";
  List.iter
    (fun gap ->
      let build () =
        Scenario.build ~groups:8 ~losers_per_group:2 ~updates_per_loser:2
          ~gap ~delegated:true ()
      in
      let s1 = build () in
      let r1 = Ariesrh_recovery.Aries_rh.recover (Db.env s1.db) in
      let s2 = build () in
      let r2 = Ariesrh_recovery.Aries_rh.recover_naive_sweep (Db.env s2.db) in
      assert (r1.undos = r2.undos);
      Format.printf "%-10d | %12d %12d | %11.1fx %10d@." s1.total_records
        r1.backward_examined r2.backward_examined
        (float_of_int r2.backward_examined
        /. float_of_int (max 1 r1.backward_examined))
        r1.undos)
    [ 125; 250; 500; 1000; 2000 ]

(* ------------------------------------------------------------------ *)
(* E10: delegation under contention                                    *)
(* ------------------------------------------------------------------ *)

let e10 () =
  header "E10: delegation under lock contention (simulator)"
    "Closed-loop clients colliding on a small object set, with waits-for\n\
     deadlock detection and youngest-victim aborts. Delegation transfers\n\
     locks along with responsibility; the engine state must still equal\n\
     the sum of committed increments at every delegation rate.";
  Format.printf "%-6s | %10s %9s %9s %10s %12s %7s@." "rate" "committed"
    "waits" "deadlock" "victims" "delegations" "ok";
  List.iter
    (fun rate ->
      let db = Db.create (Config.make ~n_objects:16 ~buffer_capacity:16 ()) in
      let o =
        Sim.run ~clients:8 ~txns_per_client:100 ~n_objects:12
          ~delegation_rate:rate ~seed:21L db
      in
      Format.printf "%-6.2f | %10d %9d %9d %10d %12d %7b@." rate o.committed
        o.waits o.deadlocks o.aborted o.delegations o.state_ok)
    [ 0.0; 0.2; 0.5; 0.8 ]

(* ------------------------------------------------------------------ *)
(* E11: merged vs separate forward passes                              *)
(* ------------------------------------------------------------------ *)

let e11 () =
  header "E11: one forward pass or two (§3.3's remark)"
    "The paper notes ARIES/RH relies on a single (merged analysis+redo)\n\
     forward pass; classic ARIES runs analysis and redo separately. Both\n\
     organisations handle delegation identically (scopes are built during\n\
     analysis either way) — the difference is purely a second sequential\n\
     read of the redo region.";
  Format.printf "%-10s | %12s %12s | %12s %12s@." "log recs" "merged_fwd"
    "separate_fwd" "merged(ms)" "separate(ms)";
  List.iter
    (fun gap ->
      let run passes =
        let s =
          Scenario.build ~groups:4 ~losers_per_group:4 ~updates_per_loser:2
            ~gap ~delegated:true ()
        in
        let (report : Ariesrh_recovery.Report.t), ms =
          time (fun () -> Ariesrh_recovery.Aries_rh.recover ~passes (Db.env s.db))
        in
        (report.forward_records, ms)
      in
      let m_recs, m_ms = run Ariesrh_recovery.Forward.Merged in
      let s_recs, s_ms = run Ariesrh_recovery.Forward.Separate in
      Format.printf "%-10d | %12d %12d | %12.2f %12.2f@." (m_recs) m_recs
        s_recs m_ms s_ms)
    [ 500; 2000; 8000 ]

(* ------------------------------------------------------------------ *)
(* E12: substrate characterization — buffer pool vs WAL traffic        *)
(* ------------------------------------------------------------------ *)

let e12 () =
  header "E12: buffer pool size vs I/O (substrate characterization)"
    "The STEAL/NO-FORCE pool under a fixed skewed workload: a smaller\n\
     pool evicts more dirty pages, each eviction forcing the log first\n\
     (the WAL rule) and writing a data page. Context for every recovery\n\
     number above: the substrate behaves like the storage manager the\n\
     paper assumes.";
  let spec =
    {
      Gen.default with
      n_objects = 512;
      n_steps = 4000;
      theta = 0.9;
      p_checkpoint = 0.0;
    }
  in
  let script = Gen.generate spec ~seed:17L in
  Format.printf "%-10s | %10s %10s %10s %10s %12s@." "pool" "evictions"
    "pg_writes" "pg_reads" "hit_rate" "log_flushes";
  List.iter
    (fun capacity ->
      let db =
        Db.create
          (Config.make ~n_objects:512 ~objects_per_page:8
             ~buffer_capacity:capacity ())
      in
      Driver.run db script;
      let hits, misses, evictions = Db.pool_counters db in
      let d = Db.disk_stats db in
      let stats = Log_store.stats (Db.log_store db) in
      Format.printf "%-10d | %10d %10d %10d %9.1f%% %12d@." capacity evictions
        d.page_writes d.page_reads
        (100. *. float_of_int hits /. float_of_int (max 1 (hits + misses)))
        stats.flushes)
    [ 2; 4; 8; 16; 32; 64 ]

(* ------------------------------------------------------------------ *)
(* E13: checkpoint interval vs restart time                            *)
(* ------------------------------------------------------------------ *)

let e13 () =
  header "E13: checkpoint interval vs restart recovery"
    "The paper's proofs ignore checkpoints and note the extension is\n\
     easy; we implemented fuzzy ARIES-style checkpoints carrying the\n\
     Ob_Lists with scopes. Classic trade-off, delegation included: more\n\
     frequent checkpoints bound the forward pass.";
  let spec =
    {
      Gen.default with
      n_objects = 256;
      n_steps = 6000;
      p_delegate = 0.15;
      p_checkpoint = 0.0;
      terminate_all = false;
    }
  in
  let script = Gen.generate spec ~seed:23L in
  let n = List.length script in
  Format.printf "%-10s | %10s %10s %10s %10s@." "ckpt every" "log recs"
    "fwd_recs" "undos" "rec(ms)";
  List.iter
    (fun interval ->
      let db = Driver.fresh_db ~n_objects:256 () in
      Driver.run ~upto:(n * 9 / 10)
        ~on_action:(fun i ->
          if interval > 0 && i mod interval = interval - 1 then
            Db.checkpoint db)
        db script;
      flush_log db;
      Db.crash db;
      let report, ms = time (fun () -> Db.recover db) in
      Format.printf "%-10s | %10d %10d %10d %10.2f@."
        (if interval = 0 then "never" else string_of_int interval)
        (Lsn.to_int (Log_store.head (Db.log_store db)))
        report.forward_records report.undos ms)
    [ 0; 2000; 500; 100 ]

(* ------------------------------------------------------------------ *)
(* E14: delegation bloats checkpoints                                  *)
(* ------------------------------------------------------------------ *)

let e14 () =
  header "E14: checkpoint size vs delegation rate"
    "ARIES/RH checkpoints must carry the Ob_Lists with scopes (§3.4),\n\
     and delegated-in scopes accumulate on long-lived delegatees: the\n\
     price of restartability is a bigger checkpoint record as delegation\n\
     grows. Measured as the encoded size of a checkpoint taken at the\n\
     same point of otherwise-identical workloads.";
  Format.printf "%-8s | %12s %12s %12s@." "rate" "ckpt bytes" "scopes"
    "live txns";
  List.iter
    (fun rate ->
      let spec =
        {
          Gen.default with
          n_objects = 256;
          n_steps = 3000;
          max_concurrent = 12;
          p_delegate = rate;
          p_commit = 0.04;
          p_abort = 0.02;
          p_checkpoint = 0.0;
          terminate_all = false;
        }
      in
      let script = Gen.generate spec ~seed:29L in
      let db = Driver.fresh_db ~n_objects:256 () in
      Driver.run db script;
      let before = Lsn.to_int (Log_store.head (Db.log_store db)) in
      Db.checkpoint db;
      (* the checkpoint appended ckpt_begin + ckpt_end: measure them *)
      let bytes = ref 0 in
      let scopes = ref 0 in
      Log_store.iter_forward (Db.log_store db)
        ~from:(Ariesrh_types.Lsn.of_int (before + 1)) (fun _ r ->
          bytes := !bytes + String.length (Ariesrh_wal.Record.encode r);
          match r.Ariesrh_wal.Record.body with
          | Ariesrh_wal.Record.Ckpt_end ck ->
              scopes :=
                List.fold_left
                  (fun acc (ob : Ariesrh_wal.Record.ckpt_ob) ->
                    acc + List.length ob.ck_scopes)
                  0 ck.ck_obs
          | _ -> ());
      Format.printf "%-8.2f | %12d %12d %12d@." rate !bytes !scopes
        (Db.active_count db))
    [ 0.0; 0.1; 0.2; 0.4 ]

(* ------------------------------------------------------------------ *)
(* E15: sustained load on a bounded log                                 *)
(* ------------------------------------------------------------------ *)

let e15 () =
  header "E15: sustained load on a bounded log (governor + backpressure)"
    "The closed-loop simulator against a WAL with a hard byte budget: a\n\
     governor checkpoints, truncates and applies delegation-aware\n\
     backpressure; refused clients retry with exponential backoff. The\n\
     cost of keeping the log bounded differs per engine: every scope a\n\
     delegatee holds pins the truncation horizon (E8), and eager's\n\
     anchor records eat budget at each delegation. Stall = scheduler\n\
     steps clients spent parked; pinned = head - truncation horizon at\n\
     the end of the run.";
  let module Governor = Ariesrh_maintenance.Governor in
  let rows = ref [] in
  Format.printf
    "%-8s %-6s | %9s %8s %9s %9s %9s | %6s %6s %7s | %8s %6s@." "budget"
    "engine" "committed" "txn/s" "stall" "overload" "abandon" "ckpts"
    "trunc" "victims" "pinned" "peak";
  List.iter
    (fun capacity ->
      List.iter
        (fun (name, impl) ->
          let db =
            Db.create
              (Config.make ~n_objects:64 ~buffer_capacity:16 ~impl
                 ~locking:true
                 ?log_capacity_bytes:
                   (if capacity = 0 then None else Some capacity)
                 ())
          in
          let gov = Governor.create db in
          let peak = ref 0.0 in
          let tick () =
            Governor.tick gov;
            let p = Db.log_pressure db in
            if p > !peak then peak := p
          in
          let o, ms =
            time (fun () ->
                Sim.run ~clients:8 ~txns_per_client:60 ~n_objects:48
                  ~delegation_rate:0.25 ~seed:31L ~tick db)
          in
          let gs = Governor.stats gov in
          let pinned =
            Lsn.to_int (Log_store.head (Db.log_store db))
            - Lsn.to_int (Db.truncation_horizon db)
          in
          let tps = float_of_int o.Sim.committed /. (ms /. 1000.) in
          assert o.Sim.state_ok;
          Format.printf
            "%-8d %-6s | %9d %8.0f %9d %9d %9d | %6d %6d %7d | %8d %6.2f@."
            capacity name o.Sim.committed tps o.Sim.stall_steps
            o.Sim.overloads o.Sim.abandoned gs.Governor.checkpoints
            gs.Governor.truncations gs.Governor.victims pinned !peak;
          rows := (name, capacity, o, tps, gs, pinned, !peak) :: !rows)
        [ ("rh", Config.Rh); ("lazy", Config.Lazy); ("eager", Config.Eager) ])
    (* 0 = unbounded: the no-governor baseline every bounded row is
       paying against *)
    [ 0; 32768; 12288; 4096 ];
  (* machine-readable artifact for CI trend tracking *)
  let path = bench_path "BENCH_e15_engines.json" in
  let () =
      let oc = open_out path in
      let engines =
        List.rev_map
          (fun (name, capacity, (o : Sim.outcome), tps,
                (gs : Governor.stats), pinned, peak) ->
            Printf.sprintf
              {|    { "engine": %S, "capacity_bytes": %d, "committed": %d,
      "throughput_txn_per_s": %.1f, "stall_steps": %d, "backoffs": %d,
      "overloads": %d, "log_fulls": %d, "abandoned": %d, "victimized": %d,
      "delegations": %d, "checkpoints": %d, "truncations": %d,
      "records_truncated": %d, "governor_victims": %d,
      "pinned_records": %d, "peak_pressure": %.3f, "state_ok": %b }|}
              name capacity o.Sim.committed tps o.Sim.stall_steps
              o.Sim.backoffs o.Sim.overloads o.Sim.log_fulls o.Sim.abandoned
              o.Sim.victimized o.Sim.delegations gs.Governor.checkpoints
              gs.Governor.truncations gs.Governor.records_truncated
              gs.Governor.victims pinned peak o.Sim.state_ok)
          !rows
      in
      Printf.fprintf oc
        "{\n  \"experiment\": \"e15\",\n  \"engines\": [\n%s\n  ]\n}\n"
        (String.concat ",\n" engines);
      close_out oc;
      Format.printf "@.wrote %s@." path
  in
  ()

(* ------------------------------------------------------------------ *)
(* E16: hot-path logical counters (perf-regression gate)               *)
(* ------------------------------------------------------------------ *)

(* An experiment may leave extra top-level fields for its
   BENCH_<name>.json artifact here; [run_instrumented] drains the list
   after the run. E16 uses it to publish the gated counters. *)
let artifact_extra : (string * Obs.Json.t) list ref = ref []

let e16 () =
  header "E16: hot-path logical counters (perf-regression gate)"
    "The four hot paths of this PR, measured with deterministic logical\n\
     counters — never wall time, so CI can gate on exact drift:\n\
     (a) decoded-record cache under a restart-heavy workload\n\
     (b) O(1) LRU eviction: frames examined per eviction, across pool sizes\n\
     (c) group commit: log forces under the concurrent simulator\n\
     (d) invoker-indexed scope lookup under heavy delegation.\n\
     CI regenerates these counters and fails if any regresses >5%\n\
     against bench/baseline_e16.json.";
  let engines =
    [ ("rh", Config.Rh); ("lazy", Config.Lazy); ("eager", Config.Eager) ]
  in
  (* (a) restart-heavy decode workload: run a delegation-heavy script to
     90%, then crash+recover repeatedly. Every restart re-reads the same
     durable prefix; the cache turns those re-decodes into hits. *)
  let restart_spec =
    {
      Gen.default with
      n_objects = 128;
      n_steps = 1500;
      max_concurrent = 12;
      p_delegate = 0.2;
      p_commit = 0.05;
      p_abort = 0.02;
      p_checkpoint = 0.0;
      terminate_all = false;
    }
  in
  let restart_script = Gen.generate restart_spec ~seed:37L in
  let restart_heavy impl ~record_cache =
    let db = Driver.fresh_db ~impl ~record_cache ~n_objects:128 () in
    Driver.run ~upto:(List.length restart_script * 9 / 10) db restart_script;
    flush_log db;
    for _ = 1 to 6 do
      Db.crash db;
      ignore (Db.recover db)
    done;
    (Log_store.decode_calls (Db.log_store db), Db.peek_all db)
  in
  (* (b) eviction scans: E12's skewed workload at two pool sizes; the
     gate is scans == evictions (one frame examined per eviction)
     whatever the pool size — the old fold examined every frame. *)
  let evict_spec =
    {
      Gen.default with
      n_objects = 512;
      n_steps = 2500;
      theta = 0.9;
      p_checkpoint = 0.0;
    }
  in
  let evict_script = Gen.generate evict_spec ~seed:17L in
  let evictions impl ~capacity =
    let db =
      Db.create
        (Config.make ~n_objects:512 ~objects_per_page:8
           ~buffer_capacity:capacity ~impl ())
    in
    Driver.run db evict_script;
    let pool = (Db.env db).Ariesrh_recovery.Env.pool in
    let _, _, ev = Db.pool_counters db in
    (ev, Buffer_pool.eviction_scans pool)
  in
  (* (c) group commit: the same contended simulator run with commits
     forced one by one vs batched 8 at a time. *)
  let sim_flushes impl ~group_commit =
    let db =
      Db.create
        (Config.make ~n_objects:64 ~buffer_capacity:16 ~impl ~locking:true
           ~group_commit ())
    in
    let o =
      Sim.run ~clients:8 ~txns_per_client:60 ~n_objects:48
        ~delegation_rate:0.25 ~seed:31L db
    in
    Db.flush_commits db;
    assert o.Sim.state_ok;
    ((Log_store.stats (Db.log_store db)).Log_stats.flushes, o.Sim.committed)
  in
  (* (d) scope probes: a delegation-heavy script plus one crash/recover,
     so both normal-processing partition (split_out) and recovery
     trimming (trim_covering) are exercised. The counter is global, so
     measure the delta around the phase. *)
  let scope_spec = { restart_spec with p_delegate = 0.4; n_steps = 2000 } in
  let scope_script = Gen.generate scope_spec ~seed:41L in
  let scope_probes impl =
    let before = Ob_list.scope_probes () in
    let db = Driver.fresh_db ~impl ~n_objects:128 () in
    Driver.run ~upto:(List.length scope_script * 9 / 10) db scope_script;
    flush_log db;
    Db.crash db;
    ignore (Db.recover db);
    Ob_list.scope_probes () - before
  in
  let rows = ref [] in
  Format.printf
    "%-6s | %10s %10s %7s | %9s %9s | %9s %9s | %10s@." "engine"
    "dec_cold" "dec_cache" "saved" "scan/ev4" "scan/ev32" "flushes"
    "flushes_g" "scope_prb";
  List.iter
    (fun (name, impl) ->
      let dec_cold, st_cold = restart_heavy impl ~record_cache:0 in
      let dec_cached, st_cached =
        restart_heavy impl ~record_cache:Config.default.Config.record_cache
      in
      assert (st_cold = st_cached);
      let ev4, scans4 = evictions impl ~capacity:4 in
      let ev32, scans32 = evictions impl ~capacity:32 in
      assert (scans4 = ev4 && scans32 = ev32);
      let fl_eager, committed = sim_flushes impl ~group_commit:0 in
      let fl_grouped, committed' = sim_flushes impl ~group_commit:8 in
      assert (committed = committed');
      assert (fl_grouped < fl_eager);
      let probes = scope_probes impl in
      let saved =
        100. *. (1. -. (float_of_int dec_cached /. float_of_int dec_cold))
      in
      assert (2 * dec_cached <= dec_cold);
      Format.printf
        "%-6s | %10d %10d %6.1f%% | %4d/%-4d %4d/%-4d | %9d %9d | %10d@."
        name dec_cold dec_cached saved scans4 ev4 scans32 ev32 fl_eager
        fl_grouped probes;
      rows :=
        ( name,
          Obs.Json.Obj
            [
              ("decode_calls_uncached", Obs.Json.Int dec_cold);
              ("decode_calls_cached", Obs.Json.Int dec_cached);
              ("evictions_pool4", Obs.Json.Int ev4);
              ("eviction_scans_pool4", Obs.Json.Int scans4);
              ("evictions_pool32", Obs.Json.Int ev32);
              ("eviction_scans_pool32", Obs.Json.Int scans32);
              ("log_flushes_eager", Obs.Json.Int fl_eager);
              ("log_flushes_grouped", Obs.Json.Int fl_grouped);
              ("sim_committed", Obs.Json.Int committed);
              ("scope_probes", Obs.Json.Int probes);
            ] )
        :: !rows)
    engines;
  artifact_extra := [ ("counters", Obs.Json.Obj (List.rev !rows)) ];
  Format.printf
    "@.all engines: cached restarts decode >=2x fewer records, every@.\
     eviction examines exactly one frame, and group commit forces the@.\
     log strictly less often at identical committed work.@."

let e17 () =
  header "E17: file backend — real fsync discipline and its cost"
    "The same committed work on the simulated and the file backend.\n\
     The file backend appends checksummed frames to a segmented WAL and\n\
     fsyncs on every force, so this is the one experiment where wall\n\
     time is the point: txn/s with a real fsync in the commit path, and\n\
     how group commit amortises it. Same-seed runs must end in the same\n\
     state on both backends — the write-through design makes the file\n\
     layer invisible to the engine.";
  let engines =
    [ ("rh", Config.Rh); ("lazy", Config.Lazy); ("eager", Config.Eager) ]
  in
  let spec =
    { Gen.default with n_objects = 128; n_steps = 3000; p_checkpoint = 0.0 }
  in
  let script = Gen.generate spec ~seed:23L in
  let commits =
    List.length
      (List.filter (function Script.Commit _ -> true | _ -> false) script)
  in
  let root =
    Filename.concat (Filename.get_temp_dir_name ()) "ariesrh-bench-e17"
  in
  (* a pool big enough that the WAL rule rarely forces on eviction —
     the fsyncs measured here are the commit path's, which is what
     group commit batches *)
  let run_one impl ~backend ~group_commit =
    let db =
      Db.create ~backend
        (Config.make ~n_objects:128 ~buffer_capacity:64 ~impl ~locking:true
           ~group_commit ())
    in
    let t0 = Unix.gettimeofday () in
    Driver.run db script;
    Db.flush_commits db;
    Db.shutdown db;
    let dt = Unix.gettimeofday () -. t0 in
    let fsyncs = Db.log_fsyncs db + Db.page_fsyncs db in
    let state = Db.peek_all db in
    Db.close db;
    (dt, fsyncs, state)
  in
  let rows = ref [] in
  Format.printf "%-6s | %9s %9s %11s | %9s %9s | %9s@." "engine" "sim tx/s"
    "file tx/s" "file-g tx/s" "fsyncs" "fsyncs/s" "fsyncs-g";
  List.iter
    (fun (name, impl) ->
      let dir tag =
        let d = Filename.concat root (name ^ "-" ^ tag) in
        Ariesrh_storage.Backend.remove_tree d;
        Ariesrh_storage.Backend.File { dir = d }
      in
      let dt_sim, fs_sim, st_sim =
        run_one impl ~backend:Ariesrh_storage.Backend.Sim ~group_commit:0
      in
      let dt_file, fs_file, st_file =
        run_one impl ~backend:(dir "eager") ~group_commit:0
      in
      let dt_grp, fs_grp, st_grp =
        run_one impl ~backend:(dir "grouped") ~group_commit:8
      in
      (* backend parity: the file layer must be semantically invisible *)
      assert (st_sim = st_file && st_sim = st_grp);
      assert (fs_sim = 0);
      assert (fs_grp < fs_file);
      let tps dt = float_of_int commits /. dt in
      Format.printf "%-6s | %9.0f %9.0f %11.0f | %9d %9.0f | %9d@." name
        (tps dt_sim) (tps dt_file) (tps dt_grp) fs_file
        (float_of_int fs_file /. dt_file)
        fs_grp;
      rows :=
        ( name,
          Obs.Json.Obj
            [
              ("committed", Obs.Json.Int commits);
              ("sim_txn_per_s", Obs.Json.Float (tps dt_sim));
              ("file_txn_per_s", Obs.Json.Float (tps dt_file));
              ("file_grouped_txn_per_s", Obs.Json.Float (tps dt_grp));
              ("file_fsyncs", Obs.Json.Int fs_file);
              ( "file_fsyncs_per_s",
                Obs.Json.Float (float_of_int fs_file /. dt_file) );
              ("file_grouped_fsyncs", Obs.Json.Int fs_grp);
              ("file_wall_ms", Obs.Json.Float (1000. *. dt_file));
              ("file_grouped_wall_ms", Obs.Json.Float (1000. *. dt_grp));
              ("sim_wall_ms", Obs.Json.Float (1000. *. dt_sim));
            ] )
        :: !rows)
    engines;
  Ariesrh_storage.Backend.remove_tree root;
  artifact_extra := [ ("throughput", Obs.Json.Obj (List.rev !rows)) ];
  Format.printf
    "@.every engine ends in the same state on both backends, and group@.\
     commit strictly reduces fsyncs at identical committed work.@."

let e18 () =
  header "E18: media scrubbing — overhead and heal latency"
    "The silent-corruption defences must be close to free when nothing\n\
     is corrupt. Part one runs the same committed workload with the\n\
     incremental scrubber off and riding along (WAL archiving on in\n\
     both), and reports the overhead. Part two injects one corruption\n\
     of each class and times the full detect-and-heal sweep against a\n\
     clean-sweep baseline.";
  let module Scrubber = Ariesrh_maintenance.Scrubber in
  let module Disk = Ariesrh_storage.Disk in
  let module Prng = Ariesrh_util.Prng in
  let n_objects = 128 and txns = 8_000 in
  let workload ~batch =
    let db =
      Db.create
        (Config.make ~n_objects ~buffer_capacity:32 ~impl:Config.Rh
           ~locking:true ())
    in
    ignore (Db.attach_archive db);
    let scrubber = if batch > 0 then Some (Scrubber.create ~batch db) else None in
    let rng = Prng.create 77L in
    let t0 = Unix.gettimeofday () in
    for i = 1 to txns do
      let x = Db.begin_txn db in
      for _ = 1 to 4 do
        Db.add db x (Oid.of_int (Prng.int rng n_objects)) (1 + Prng.int rng 9)
      done;
      Db.commit db x;
      match scrubber with
      | Some s when i mod 4 = 0 -> ignore (Scrubber.step s)
      | _ -> ()
    done;
    let dt = 1000. *. (Unix.gettimeofday () -. t0) in
    let checked, _, _, unhealable = Db.media_counters db in
    assert (unhealable = 0);
    (dt, checked, Db.peek_all db)
  in
  let dt_off, _, st_off = workload ~batch:0 in
  let dt_on, checked_on, st_on = workload ~batch:16 in
  (* the scrubber is semantically invisible *)
  assert (st_off = st_on);
  let overhead_pct = 100. *. (dt_on -. dt_off) /. dt_off in
  Format.printf
    "overhead: %d txns, scrub off %.1f ms, scrub riding %.1f ms\n\
     (%d images checked) -> %+.1f%%@."
    txns dt_off dt_on checked_on overhead_pct;
  (* part two: heal latency per corruption class. One fresh db, a
     modest history, then [reps] inject-and-sweep rounds per class,
     against the clean-sweep baseline. *)
  let db =
    Db.create
      (Config.make ~n_objects ~buffer_capacity:32 ~impl:Config.Rh
       ~locking:true ())
  in
  ignore (Db.attach_archive db);
  let rng = Prng.create 78L in
  for _ = 1 to 500 do
    let x = Db.begin_txn db in
    for _ = 1 to 4 do
      Db.add db x (Oid.of_int (Prng.int rng n_objects)) (1 + Prng.int rng 9)
    done;
    Db.commit db x
  done;
  ignore (Db.archive_catchup db);
  let disk = Ariesrh_storage.Buffer_pool.disk (Db.env db).Ariesrh_recovery.Env.pool in
  let reps = 50 in
  let sweep_ms () =
    let (out : Db.scrub_outcome), ms = time (fun () -> Db.scrub db) in
    (out, ms)
  in
  let baseline =
    let acc = ref 0. in
    for _ = 1 to reps do
      let out, ms = sweep_ms () in
      assert (out.Db.corrupt = 0);
      acc := !acc +. ms
    done;
    !acc /. float_of_int reps
  in
  let timed_class ~name inject =
    let acc = ref 0. and healed = ref 0 in
    for _ = 1 to reps do
      inject ();
      let out, ms = sweep_ms () in
      healed := !healed + out.Db.healed;
      assert (out.Db.unhealable = 0);
      acc := !acc +. ms
    done;
    let mean = !acc /. float_of_int reps in
    assert (!healed >= reps);
    Format.printf "%-12s: sweep %.3f ms (clean %.3f ms), heal +%.3f ms@." name
      mean baseline (mean -. baseline);
    (name, mean)
  in
  let pages = Disk.page_count disk in
  let page_rot =
    timed_class ~name:"page-rot" (fun () ->
        Disk.bitrot_main disk (Page_id.of_int (Prng.int rng pages))
          ~slot:(Prng.int rng 4))
  in
  let log = Db.log_store db in
  let wal_rot =
    timed_class ~name:"wal-rot" (fun () ->
        let low = Lsn.to_int (Log_store.truncated_below log) - 1 in
        let durable = Lsn.to_int (Log_store.durable log) in
        Log_store.bitrot_record log ~idx:(low + Prng.int rng (durable - low)))
  in
  artifact_extra :=
    [
      ( "scrub",
        Obs.Json.Obj
          [
            ("txns", Obs.Json.Int txns);
            ("wall_ms_scrub_off", Obs.Json.Float dt_off);
            ("wall_ms_scrub_on", Obs.Json.Float dt_on);
            ("images_checked", Obs.Json.Int checked_on);
            ("overhead_pct", Obs.Json.Float overhead_pct);
            ("clean_sweep_ms", Obs.Json.Float baseline);
            ("heal_sweep_ms_page_rot", Obs.Json.Float (snd page_rot));
            ("heal_sweep_ms_wal_rot", Obs.Json.Float (snd wal_rot));
            ("heal_reps", Obs.Json.Int reps);
          ] );
    ];
  Format.printf
    "@.the scrubber is semantically invisible (identical final state),@.\
     and every injected corruption healed within one sweep.@."

let e19 () =
  header "E19: time-travel read latency vs history depth"
    "as_of / snapshot_at / history reconstruct state from the durable\n\
     log alone, so a query at LSN L scans the covered prefix [1, L]:\n\
     cost is linear in history depth, amortised per record. Part one\n\
     grows the log and measures the per-query and per-record cost.\n\
     Part two truncates the prefix: with the archive attached the same\n\
     query is answered by bridging through the archived WAL frames\n\
     (same answer, measured separately); without it, the reader gets a\n\
     typed refusal instead of a partial answer.";
  let module Temporal = Ariesrh_temporal.Temporal in
  let n_objects = 128 in
  let spec =
    { Gen.default with n_objects; n_steps = 0; p_delegate = 0.15;
      p_checkpoint = 0.0 }
  in
  let reps = 200 in
  let bench_queries db =
    let cps = Temporal.commit_points db in
    let last = fst (List.nth cps (List.length cps - 1)) in
    let timed f =
      let (), ms = time (fun () -> for _ = 1 to reps do f () done) in
      1000. *. ms /. float_of_int reps (* us/query *)
    in
    let as_of = timed (fun () -> ignore (Temporal.as_of db ~lsn:last (Oid.of_int 0))) in
    let snap = timed (fun () -> ignore (Temporal.snapshot_at db last)) in
    let hist = timed (fun () -> ignore (Temporal.history db (Oid.of_int 0))) in
    (Lsn.to_int last, List.length cps, as_of, snap, hist)
  in
  let rows = ref [] in
  Format.printf "%-8s | %8s %8s | %12s %12s %12s | %12s@." "steps" "records"
    "commits" "as_of(us)" "snap(us)" "history(us)" "as_of us/rec";
  List.iter
    (fun n_steps ->
      let script = Gen.generate { spec with n_steps } ~seed:47L in
      let db = Driver.fresh_db ~n_objects () in
      Driver.run db script;
      flush_log db;
      let records, commits, as_of, snap, hist = bench_queries db in
      Format.printf "%-8d | %8d %8d | %12.1f %12.1f %12.1f | %12.4f@."
        n_steps records commits as_of snap hist
        (as_of /. float_of_int records);
      rows :=
        Obs.Json.Obj
          [
            ("steps", Obs.Json.Int n_steps);
            ("records", Obs.Json.Int records);
            ("commits", Obs.Json.Int commits);
            ("as_of_us", Obs.Json.Float as_of);
            ("snapshot_us", Obs.Json.Float snap);
            ("history_us", Obs.Json.Float hist);
          ]
        :: !rows)
    [ 500; 1000; 2000; 4000; 8000 ];
  (* part two: the same mid-history query before truncation, after
     truncation with the archive bridging the gap, and the typed
     refusal without it *)
  let n_steps = 4000 in
  let script = Gen.generate { spec with n_steps } ~seed:47L in
  let run_one ~with_archive =
    let db = Driver.fresh_db ~n_objects () in
    if with_archive then ignore (Db.attach_archive db);
    Driver.run db script;
    flush_log db;
    db
  in
  let db = run_one ~with_archive:true in
  let cps = Temporal.commit_points db in
  let mid = fst (List.nth cps (List.length cps / 2)) in
  let timed f =
    let (), ms = time (fun () -> for _ = 1 to reps do f () done) in
    1000. *. ms /. float_of_int reps
  in
  let live_us = timed (fun () -> ignore (Temporal.snapshot_at db mid)) in
  let live_answer = Temporal.snapshot_at db mid in
  Db.checkpoint db;
  ignore (Db.truncate_log db);
  let cov = Temporal.coverage db in
  assert cov.Temporal.bridged;
  let bridged_us = timed (fun () -> ignore (Temporal.snapshot_at db mid)) in
  assert (Temporal.snapshot_at db mid = live_answer);
  let bare = run_one ~with_archive:false in
  Db.checkpoint bare;
  ignore (Db.truncate_log bare);
  let refused =
    match Temporal.snapshot_at bare mid with
    | _ -> false
    | exception Errors.History_unavailable _ -> true
  in
  assert refused;
  Format.printf
    "@.bridging: same mid-history snapshot, live log %.1f us,@.\
     archive-bridged after truncation %.1f us (identical answer);@.\
     without the archive the truncated read is refused, never partial.@."
    live_us bridged_us;
  artifact_extra :=
    [
      ("depth", Obs.Json.List (List.rev !rows));
      ( "bridging",
        Obs.Json.Obj
          [
            ("mid_lsn", Obs.Json.Int (Lsn.to_int mid));
            ("live_snapshot_us", Obs.Json.Float live_us);
            ("bridged_snapshot_us", Obs.Json.Float bridged_us);
            ("unbridged_refused", Obs.Json.Bool refused);
          ] );
    ]

(* set by an experiment whose pass/fail gate should fail the process
   without losing the artifact (run_instrumented writes it after the
   experiment body returns) *)
let exit_code = ref 0

let e20 () =
  header "E20: sharded engine — multicore scaling with cross-shard transfers"
    "N independent shards (per-shard WAL, buffer pool, lock table), one\n\
     domain each, objects hash-partitioned. Each domain runs a closed\n\
     loop of shard-local transactions; ~5% of them also touch one\n\
     object homed on the neighbouring shard, pulling it over with the\n\
     crash-atomic transfer protocol (< 10% of ops cross shards).\n\
     Committed-transaction throughput should scale with shard count;\n\
     the gate (>= ARIESRH_E20_MIN_SCALE x at 4 shards, default 2.0)\n\
     applies only where the host grants >= 4 domains.";
  let module Sharded = Ariesrh_shard.Sharded in
  let module Shard_pool = Ariesrh_shard.Shard_pool in
  let txns_per_shard = 3000 in
  let ops_per_txn = 4 in
  let objects_per_shard = 64 in
  let run shards =
    let pool = Shard_pool.create shards in
    let n_objects = shards * objects_per_shard in
    let config =
      Config.make ~n_objects ~objects_per_page:8
        ~buffer_capacity:(max 16 (n_objects / 8))
        ~impl:Config.Rh ~locking:true ~shards ()
    in
    let sh = Sharded.create ~pool config in
    (* per-domain tallies; each slot is written by one domain only *)
    let applied = Array.make shards 0 in
    let cross = Array.make shards 0 in
    let skipped = Array.make shards 0 in
    let worker i =
      let rng = Random.State.make [| 0xE20; i |] in
      (* object o is based on shard (o mod shards): shard i's local
         pool interleaves with every other shard's *)
      let obj_of owner =
        Oid.of_int ((Random.State.int rng objects_per_shard * shards) + owner)
      in
      let try_add x oid =
        match Sharded.add sh x oid 1 with
        | () -> applied.(i) <- applied.(i) + 1; true
        | exception Errors.Xfer_refused _ ->
            (* the object is locked on its current shard right now —
               skip the op, the transaction commits without it *)
            skipped.(i) <- skipped.(i) + 1;
            false
      in
      for k = 1 to txns_per_shard do
        (* service peers' transfer jobs queued on this shard *)
        Shard_pool.poll pool;
        let x = Sharded.begin_txn sh ~shard:i in
        for _ = 1 to ops_per_txn do
          ignore (try_add x (obj_of i))
        done;
        if shards > 1 && k mod 20 = 0 then begin
          if try_add x (obj_of ((i + 1) mod shards)) then
            cross.(i) <- cross.(i) + 1
        end;
        Sharded.commit sh x
      done
    in
    let (), ms = time (fun () -> ignore (Shard_pool.map pool worker)) in
    Sharded.flush_commits sh;
    (* every committed +1 must be visible exactly once, wherever the
       object ended up homed *)
    let total_applied = Array.fold_left ( + ) 0 applied in
    let sum = Array.fold_left ( + ) 0 (Sharded.peek_all sh) in
    assert (sum = total_applied);
    (match Sharded.audit sh with
    | [] -> ()
    | vs -> failwith (String.concat "; " vs));
    let c = Sharded.counters sh in
    Sharded.close sh;
    Shard_pool.shutdown pool;
    let committed = shards * txns_per_shard in
    let tps = 1000. *. float_of_int committed /. ms in
    (ms, committed, tps, Array.fold_left ( + ) 0 cross,
     Array.fold_left ( + ) 0 skipped, c)
  in
  let rows = ref [] in
  Format.printf "%-7s | %10s %10s %12s | %9s %8s %8s@." "shards" "txns"
    "wall(ms)" "txn/s" "migrated" "cross" "refused";
  let results =
    List.map
      (fun shards ->
        let ms, committed, tps, cross, skipped, c = run shards in
        Format.printf "%-7d | %10d %10.0f %12.0f | %9d %8d %8d@." shards
          committed ms tps c.Sharded.migrations cross c.Sharded.migrations_refused;
        rows :=
          Obs.Json.Obj
            [
              ("shards", Obs.Json.Int shards);
              ("committed_txns", Obs.Json.Int committed);
              ("wall_ms", Obs.Json.Float ms);
              ("txns_per_sec", Obs.Json.Float tps);
              ("migrations", Obs.Json.Int c.Sharded.migrations);
              ("cross_shard_txns", Obs.Json.Int cross);
              ("refused", Obs.Json.Int c.Sharded.migrations_refused);
              ("ops_skipped", Obs.Json.Int skipped);
            ]
          :: !rows;
        (shards, tps))
      [ 1; 2; 4 ]
  in
  let tps_of n = List.assoc n results in
  let scale = tps_of 4 /. tps_of 1 in
  let min_scale =
    match Sys.getenv_opt "ARIESRH_E20_MIN_SCALE" with
    | Some s -> float_of_string s
    | None -> 2.0
  in
  let domains = Domain.recommended_domain_count () in
  let gated = domains >= 4 in
  let pass = (not gated) || scale >= min_scale in
  Format.printf "@.scaling 1 -> 4 shards: %.2fx (gate: >= %.1fx, %s)@." scale
    min_scale
    (if not gated then
       Printf.sprintf "SKIPPED — host grants only %d domain(s)" domains
     else if pass then "PASS"
     else "FAIL");
  if not pass then exit_code := 1;
  artifact_extra :=
    [
      ("scaling", Obs.Json.List (List.rev !rows));
      ("scale_4_over_1", Obs.Json.Float scale);
      ("min_scale", Obs.Json.Float min_scale);
      ("recommended_domains", Obs.Json.Int domains);
      ("gate_enforced", Obs.Json.Bool gated);
      ("gate_pass", Obs.Json.Bool pass);
    ]

let e21 () =
  header "E21: instant restart — time-to-first-commit vs. log length"
    "A long-lived loser keeps updating one object across an ever-growing\n\
     committed history with periodic checkpoints. Offline restart must\n\
     finish redo and walk the loser's whole update chain before serving\n\
     anything, so its logical time-to-first-commit (forward records +\n\
     backward records examined/skipped + undos) grows with the log.\n\
     On-demand restart runs analysis only — bounded by the checkpoint\n\
     interval — opens immediately, and drains the same backlog in the\n\
     background; the partitioned variant (4 shards, one domain each)\n\
     additionally runs every shard's analysis in parallel. The gates are\n\
     deterministic logical counters; wall times are informative.";
  let module Report = Ariesrh_recovery.Report in
  let n_objects = 128 in
  let ckpt_every = 50 in
  let loser_every = 10 in
  (* [txns] committed single-add transactions, a checkpoint every
     [ckpt_every], and one transaction begun before all of it that adds
     to object 0 every [loser_every] commits and never commits itself *)
  let build ~mode ~txns =
    let db = Driver.fresh_db ~recovery_mode:mode ~n_objects () in
    let loser = Db.begin_txn db in
    Db.add db loser (Oid.of_int 0) 1;
    for k = 1 to txns do
      let x = Db.begin_txn db in
      Db.add db x (Oid.of_int (1 + (k mod (n_objects - 1)))) 1;
      Db.commit db x;
      if k mod loser_every = 0 then Db.add db loser (Oid.of_int 0) 1;
      if k mod ckpt_every = 0 then Db.checkpoint db
    done;
    Db.crash db;
    db
  in
  (* all ≡ 25 mod ckpt_every: every run crashes the same distance past
     its last checkpoint, so the analysis tail is comparable across
     lengths (a multiple of ckpt_every would leave it degenerately 0) *)
  let lengths = [ 425; 825; 1625 ] in
  let rows = ref [] in
  Format.printf "%-6s | %9s %8s | %11s %11s %10s %6s@." "txns" "off_ttfc"
    "od_ttfc" "off_rec(ms)" "od_open(ms)" "drain(ms)" "steps";
  let results =
    List.map
      (fun txns ->
        let off = build ~mode:Config.Offline ~txns in
        let off_report, off_ms = time (fun () -> Db.recover off) in
        let off_ttfc =
          off_report.Report.forward_records
          + off_report.Report.backward_examined
          + off_report.Report.backward_skipped + off_report.Report.undos
        in
        let off_state = Db.peek_all off in
        Db.close off;
        let od = build ~mode:Config.On_demand ~txns in
        let od_report, od_ms = time (fun () -> Db.recover od) in
        let od_ttfc = od_report.Report.forward_records in
        assert (Db.recovering od);
        let steps = ref 0 in
        let (), drain_ms =
          time (fun () -> while Db.recovery_step od do incr steps done)
        in
        (* the drained lazy restart must land exactly where the offline
           one did, and both must carry every committed increment *)
        assert (Db.peek_all od = off_state);
        assert (Array.fold_left ( + ) 0 off_state = txns);
        let redo_ms =
          Obs.Profiler.wall_ms od_report.Report.profile "restart.ondemand.redo"
        and undo_ms =
          Obs.Profiler.wall_ms od_report.Report.profile "restart.ondemand.undo"
        in
        Db.close od;
        Format.printf "%-6d | %9d %8d | %11.3f %11.3f %10.3f %6d@." txns
          off_ttfc od_ttfc off_ms od_ms drain_ms !steps;
        rows :=
          Obs.Json.Obj
            [
              ("txns", Obs.Json.Int txns);
              ("offline_ttfc_records", Obs.Json.Int off_ttfc);
              ("on_demand_ttfc_records", Obs.Json.Int od_ttfc);
              ("offline_recover_ms", Obs.Json.Float off_ms);
              ("on_demand_open_ms", Obs.Json.Float od_ms);
              ("on_demand_drain_ms", Obs.Json.Float drain_ms);
              ("on_demand_drain_steps", Obs.Json.Int !steps);
              ("on_demand_redo_ms", Obs.Json.Float redo_ms);
              ("on_demand_undo_ms", Obs.Json.Float undo_ms);
            ]
          :: !rows;
        (txns, off_ttfc, od_ttfc))
      lengths
  in
  (* partitioned variant: the same total history dealt across 4 shards,
     analysis per shard in parallel; self-skips below 4 domains *)
  let domains = Domain.recommended_domain_count () in
  let part_rows =
    if domains < 4 then begin
      Format.printf
        "@.partitioned variant skipped — host grants only %d domain(s)@."
        domains;
      []
    end
    else begin
      let module Shard_pool = Ariesrh_shard.Shard_pool in
      let module Sharded = Ariesrh_shard.Sharded in
      let shards = 4 in
      let txns = List.nth lengths (List.length lengths - 1) in
      let pool = Shard_pool.create shards in
      let config =
        Config.make ~n_objects ~objects_per_page:8
          ~buffer_capacity:(max 4 (n_objects / 32))
          ~impl:Config.Rh ~locking:true ~recovery_mode:Config.On_demand
          ~shards ()
      in
      let sh = Sharded.create ~pool config in
      let mine = Array.make shards [] in
      for o = n_objects - 1 downto 0 do
        let h = Sharded.base_home sh (Oid.of_int o) in
        mine.(h) <- o :: mine.(h)
      done;
      let losers =
        Array.init shards (fun i ->
            let x = Sharded.begin_txn sh ~shard:i in
            Sharded.add sh x (Oid.of_int (List.hd mine.(i))) 1;
            x)
      in
      for k = 1 to txns do
        let i = k mod shards in
        let pool_i = mine.(i) in
        let o = List.nth pool_i (1 + (k mod (List.length pool_i - 1))) in
        let x = Sharded.begin_txn sh ~shard:i in
        Sharded.add sh x (Oid.of_int o) 1;
        Sharded.commit sh x;
        if k mod loser_every = 0 then
          Sharded.add sh losers.(i) (Oid.of_int (List.hd mine.(i))) 1;
        if k mod ckpt_every = 0 then Sharded.checkpoint sh
      done;
      Sharded.crash sh;
      let reports, open_ms = time (fun () -> Sharded.recover sh) in
      let part_ttfc =
        Array.fold_left
          (fun a (r : Report.t) -> max a r.Report.forward_records)
          0 reports
      in
      let steps = ref 0 in
      let (), drain_ms =
        time (fun () -> while Sharded.recovery_step sh do incr steps done)
      in
      assert (Array.fold_left ( + ) 0 (Sharded.peek_all sh) = txns);
      Sharded.close sh;
      Shard_pool.shutdown pool;
      Format.printf
        "@.partitioned (4 shards, %d txns): max per-shard ttfc %d records, \
         open %.3f ms, drain %.3f ms (%d steps)@."
        txns part_ttfc open_ms drain_ms !steps;
      [
        ("partitioned_shards", Obs.Json.Int shards);
        ("partitioned_txns", Obs.Json.Int txns);
        ("partitioned_ttfc_records", Obs.Json.Int part_ttfc);
        ("partitioned_open_ms", Obs.Json.Float open_ms);
        ("partitioned_drain_ms", Obs.Json.Float drain_ms);
        ("partitioned_drain_steps", Obs.Json.Int !steps);
      ]
    end
  in
  (* deterministic gates: time-to-first-commit stays bounded on-demand
     (it must not track the log length) and grows offline *)
  let _, off_min, od_min = List.hd results in
  let _, off_max, od_max = List.nth results (List.length results - 1) in
  let min_ratio =
    match Sys.getenv_opt "ARIESRH_E21_MIN_RATIO" with
    | Some s -> float_of_string s
    | None -> 3.0
  in
  let ratio = float_of_int off_max /. float_of_int (max 1 od_max) in
  let bounded = od_max <= 2 * od_min in
  let grows = off_max > off_min in
  let pass = bounded && grows && ratio >= min_ratio in
  Format.printf
    "@.ttfc at %dx the log: on-demand %d -> %d records (bounded: %s), \
     offline %d -> %d; offline/on-demand at max %.1fx (gate: >= %.1fx, %s)@."
    (let a, _, _ = List.hd results
     and b, _, _ = List.nth results (List.length results - 1) in
     b / a)
    od_min od_max
    (if bounded then "yes" else "NO")
    off_min off_max ratio min_ratio
    (if pass then "PASS" else "FAIL");
  if not pass then exit_code := 1;
  artifact_extra :=
    [
      ("lengths", Obs.Json.List (List.rev !rows));
      ("offline_ttfc_max", Obs.Json.Int off_max);
      ("on_demand_ttfc_max", Obs.Json.Int od_max);
      ("ttfc_ratio", Obs.Json.Float ratio);
      ("min_ratio", Obs.Json.Float min_ratio);
      ("on_demand_bounded", Obs.Json.Bool bounded);
      ("recommended_domains", Obs.Json.Int domains);
      ("gate_pass", Obs.Json.Bool pass);
    ]
    @ part_rows

let experiments =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11);
    ("e12", e12); ("e13", e13); ("e14", e14); ("e15", e15); ("e16", e16);
    ("e17", e17); ("e18", e18); ("e19", e19); ("e20", e20); ("e21", e21);
  ]

(* Every experiment unconditionally leaves a machine-readable artifact
   behind: BENCH_e<N>.json with the wall time and a metrics snapshot
   merged across every database the experiment created (counters and
   histograms sum; the Db create hook collects the registries). Unlike
   the forensic/trace artifacts, wall time is fine here — bench output
   is a measurement, not a committed repro. *)

let run_instrumented name f =
  (* Retaining every database's registry would pin each db's log and
     pool alive for the whole experiment (the registry holds read
     closures over them), distorting GC behaviour under bechamel's
     db-per-run allocation. Instead pin only the most recent database
     and fold its snapshot into the accumulator when the next one
     appears — experiments drive their databases sequentially. *)
  let snaps = ref [] and live = ref None and dbs = ref 0 in
  let roll () =
    match !live with
    | Some db ->
        snaps := Obs.Metrics.snapshot (Db.metrics db) :: !snaps;
        live := None
    | None -> ()
  in
  Db.set_create_hook
    (Some
       (fun db ->
         roll ();
         live := Some db;
         incr dbs));
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> Db.set_create_hook None) f;
  let ms = 1000. *. (Unix.gettimeofday () -. t0) in
  roll ();
  let path = bench_path (Printf.sprintf "BENCH_%s.json" name) in
  let extra = !artifact_extra in
  artifact_extra := [];
  Obs.Json.to_file path
    (Obs.Json.Obj
       ([
          ("experiment", Obs.Json.String name);
          ("wall_ms", Obs.Json.Float ms);
          ("databases", Obs.Json.Int !dbs);
        ]
       @ extra
       @ [
           ( "metrics",
             Obs.Metrics.to_json (Obs.Metrics.merge (List.rev !snaps)) );
         ]));
  Format.printf "@.[%s: %.0f ms; metrics -> %s]@." name ms path

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as picks) -> picks
    | _ -> List.map fst experiments
  in
  Format.printf
    "ARIES/RH experiment harness — figures are reproduced separately by@.\
     `dune exec bin/ariesrh.exe -- figures all`@.";
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> run_instrumented name f
      | None -> Format.eprintf "unknown experiment %S@." name)
    requested;
  exit !exit_code
