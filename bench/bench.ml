(* Thin wrapper around bechamel: run a list of tests, return ns/run
   estimates keyed by test name. *)

open Bechamel
open Toolkit

let run ?(quota = 0.5) ?(limit = 2000) tests =
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit ~quota:(Time.second quota) ~kde:None ~stabilize:true ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"" ~fmt:"%s%s" tests)
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some (x :: _) -> x
        | _ -> nan
      in
      (name, ns) :: acc)
    results []

let find name results =
  match List.assoc_opt name results with Some v -> v | None -> nan
